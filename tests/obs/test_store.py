"""The cross-run trend store: ingestion, identity, queries, round-trip.

Pins the :mod:`repro.obs.store` contract: every committed
``BENCH_*.json`` suite ingests losslessly (and the ledger round-trips
through its JSONL file exactly), re-ingesting an unchanged baseline
fabricates no history, a path-bound store is genuinely append-only,
and the per-entry stamp fallback keeps pre-stamp baselines ordered.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    STORE_SCHEMA_VERSION,
    TrendPoint,
    TrendStore,
    entry_point,
    flatten_telemetry,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

SUITE = {
    "suite": "demo",
    "git_sha": "a" * 40,
    "python": "3.11.7",
    "updated": "2026-08-07T00:00:00Z",
    "environment": {"exec_backend": "generic"},
    "entries": {
        "case": {
            "seconds": 1.5,
            "speedup": 4.0,
            "floor": 1.3,
            "reached": True,
            "label": "textual",
            "shape": {"n": 8, "batch": 32},
            "telemetry": {
                "counters": {"steps": 12},
                "histograms": {
                    "pade": {"count": 3, "p50_ms": 2.0, "mean_ms": None}
                },
            },
        }
    },
}


class TestEntryPoint:
    def test_numeric_fields_become_metrics(self):
        point = entry_point(SUITE, "case")
        assert point.metrics["seconds"] == 1.5
        assert point.metrics["speedup"] == 4.0
        assert point.metrics["floor"] == 1.3
        # bools are flags, strings are labels — neither is a measurement
        assert "reached" not in point.metrics
        assert "label" not in point.metrics

    def test_telemetry_flattens_into_metrics(self):
        point = entry_point(SUITE, "case")
        assert point.metrics["telemetry:counters:steps"] == 12
        assert point.metrics["telemetry:pade:count"] == 3
        assert point.metrics["telemetry:pade:p50_ms"] == 2.0
        # None statistics (empty histograms) have no observation to track
        assert "telemetry:pade:mean_ms" not in point.metrics
        # the raw summary is kept verbatim for the lossless round-trip
        assert point.telemetry == SUITE["entries"]["case"]["telemetry"]

    def test_suite_level_stamp_fallback(self):
        """Pre-stamp entries inherit the suite envelope's stamps."""
        point = entry_point(SUITE, "case")
        assert point.git_sha == "a" * 40
        assert point.recorded_at == "2026-08-07T00:00:00Z"

    def test_per_entry_stamps_win(self):
        payload = json.loads(json.dumps(SUITE))
        payload["entries"]["case"]["git_sha"] = "b" * 40
        payload["entries"]["case"]["recorded_at"] = "2026-08-08T00:00:00Z"
        point = entry_point(payload, "case")
        assert point.git_sha == "b" * 40
        assert point.recorded_at == "2026-08-08T00:00:00Z"
        # stamps are provenance, not measurements
        assert "git_sha" not in point.metrics

    def test_exec_backend_from_environment(self):
        assert entry_point(SUITE, "case").exec_backend == "generic"
        legacy = {**SUITE, "environment": None}
        assert entry_point(legacy, "case").exec_backend is None

    def test_flatten_tolerates_non_summaries(self):
        assert flatten_telemetry(None) == {}
        assert flatten_telemetry({"other": 1}) == {}
        assert flatten_telemetry({"histograms": "bad", "counters": None}) == {}


class TestIdentityAndQueries:
    def test_reingest_is_a_noop(self):
        store = TrendStore()
        assert store.ingest_suite(SUITE)
        assert len(store) == 1
        # same identity six-tuple: no history is fabricated
        store.ingest_suite(SUITE)
        assert len(store) == 1
        assert store.add(entry_point(SUITE, "case")) is False

    def test_new_run_extends_the_series(self):
        store = TrendStore()
        store.ingest_suite(SUITE)
        rerun = json.loads(json.dumps(SUITE))
        rerun["git_sha"] = "c" * 40
        rerun["updated"] = "2026-08-09T00:00:00Z"
        store.ingest_suite(rerun)
        assert len(store) == 2
        assert len(store.keys()) == 1  # same series, two runs

    def test_series_ordered_by_recorded_at(self):
        store = TrendStore()
        for stamp, sha, seconds in [
            ("2026-08-09T00:00:00Z", "c" * 40, 3.0),
            ("2026-08-07T00:00:00Z", "a" * 40, 1.0),
            ("2026-08-08T00:00:00Z", "b" * 40, 2.0),
        ]:
            payload = json.loads(json.dumps(SUITE))
            payload["git_sha"] = sha
            payload["updated"] = stamp
            payload["entries"]["case"]["seconds"] = seconds
            store.ingest_suite(payload)
        (key,) = store.keys()
        assert store.metric_series(key, "seconds") == [1.0, 2.0, 3.0]
        assert len(store.latest(key, 2)) == 2
        assert store.latest(key, 2)[-1].metrics["seconds"] == 3.0

    def test_shape_distinguishes_series(self):
        store = TrendStore()
        store.ingest_suite(SUITE)
        reshaped = json.loads(json.dumps(SUITE))
        reshaped["entries"]["case"]["shape"] = {"n": 16, "batch": 32}
        store.ingest_suite(reshaped)
        assert len(store.keys()) == 2

    def test_metric_names_union_over_series(self):
        store = TrendStore()
        store.ingest_suite(SUITE)
        names = store.metric_names(store.keys()[0])
        assert "seconds" in names and "telemetry:counters:steps" in names


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        store = TrendStore()
        store.ingest_suite(SUITE)
        path = store.save(tmp_path / "ledger.jsonl")
        loaded = TrendStore.load(path)
        assert [p.to_dict() for p in loaded.points] == [
            p.to_dict() for p in store.points
        ]

    def test_bound_store_is_append_only(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        store = TrendStore(path=path)
        store.ingest_suite(SUITE)
        first = path.read_text()
        # appending a second run only adds lines, never rewrites
        rerun = json.loads(json.dumps(SUITE))
        rerun["updated"] = "2026-08-09T00:00:00Z"
        store.ingest_suite(rerun)
        second = path.read_text()
        assert second.startswith(first)
        assert len(second.splitlines()) == len(first.splitlines()) + 1
        # a fresh binding resumes the ledger and still dedupes
        resumed = TrendStore(path=path)
        assert len(resumed) == 2
        resumed.ingest_suite(rerun)
        assert len(resumed) == 2
        assert path.read_text() == second

    def test_header_is_checked(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "point"}\n')
        with pytest.raises(ValueError, match="no header"):
            TrendStore.load(path)

    def test_newer_schema_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps({"kind": "header", "schema": STORE_SCHEMA_VERSION + 1}) + "\n"
        )
        with pytest.raises(ValueError, match="newer"):
            TrendStore.load(path)

    def test_unknown_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "forward.jsonl"
        lines = [
            json.dumps({"kind": "header", "schema": STORE_SCHEMA_VERSION}),
            json.dumps({"kind": "annotation", "text": "future extension"}),
            json.dumps(entry_point(SUITE, "case").to_dict()),
        ]
        path.write_text("\n".join(lines) + "\n")
        assert len(TrendStore.load(path)) == 1

    def test_unbound_save_needs_a_path(self):
        with pytest.raises(ValueError, match="save path"):
            TrendStore().save()


class TestCommittedBaselines:
    def test_all_committed_suites_ingest_losslessly(self, tmp_path):
        """Every committed BENCH_*.json ingests completely, and the
        ledger round-trips through its file exactly — the acceptance
        contract of the trend store."""
        baselines = sorted(BENCH_DIR.glob("BENCH_*.json"))
        assert len(baselines) >= 8
        store = TrendStore()
        for path in baselines:
            payload = json.loads(path.read_text())
            points = store.ingest_file(path)
            # one point per entry, nothing dropped
            assert [p.entry for p in points] == list(payload["entries"])
            for point in points:
                entry = payload["entries"][point.entry]
                assert point.suite == payload["suite"]
                # every numeric measurement survives as a metric
                for key, value in entry.items():
                    if (
                        key in ("git_sha", "recorded_at")
                        or isinstance(value, bool)
                        or not isinstance(value, (int, float))
                    ):
                        continue
                    assert point.metrics[key] == value
                # embedded telemetry is kept verbatim
                if isinstance(entry.get("telemetry"), dict):
                    assert point.telemetry == entry["telemetry"]

        saved = store.save(tmp_path / "ledger.jsonl")
        loaded = TrendStore.load(saved)
        assert [p.to_dict() for p in loaded.points] == [
            p.to_dict() for p in store.points
        ]

    def test_fleet_baseline_telemetry_becomes_series(self):
        store = TrendStore()
        store.ingest_file(BENCH_DIR / "BENCH_fleet.json")
        (key,) = [k for k in store.keys() if k[0] == "fleet"]
        names = store.metric_names(key)
        assert any(name.startswith("telemetry:") for name in names)
