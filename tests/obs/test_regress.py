"""Regression verdicts and the trend report.

Pins :mod:`repro.obs.regress`: the rolling-median verdicts (including
the noise guard and the direction inference), the acceptance scenario
— a synthetic 2x slowdown injected into a copied committed baseline
judges ``regress`` while the untouched history judges ``ok`` — and the
report's source-independence (a live store and its read-back JSONL
file render identically; thin and empty stores say "insufficient
history", they never fabricate verdicts).
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    Thresholds,
    TrendStore,
    evaluate_trends,
    judge_series,
    metric_direction,
    render_trend_report,
    sparkline,
    worst_verdict,
)
from repro.obs.regress import (
    VERDICT_INSUFFICIENT,
    VERDICT_OK,
    VERDICT_REGRESS,
    VERDICT_WARN,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

T = Thresholds()


class TestDirections:
    @pytest.mark.parametrize(
        "name",
        ["seconds", "loop_seconds", "native_seconds_per_step", "overhead_ratio",
         "telemetry:batched_pade:p50_ms", "telemetry:batched_qr:total_ms"],
    )
    def test_lower_better(self, name):
        assert metric_direction(name) == "lower_better"

    @pytest.mark.parametrize("name", ["speedup", "occupancy"])
    def test_higher_better(self, name):
        assert metric_direction(name) == "higher_better"

    @pytest.mark.parametrize(
        "name",
        ["md_flops", "launches", "floor", "straggler_steps",
         "telemetry:counters:steps", "telemetry:batched_pade:count"],
    )
    def test_informational_not_judged(self, name):
        assert metric_direction(name) is None


class TestJudgeSeries:
    def test_flat_history_is_ok(self):
        judged = judge_series([1.0, 1.0, 1.0, 1.0], T, "lower_better")
        assert judged["verdict"] == VERDICT_OK
        assert judged["ratio"] == 1.0
        assert judged["baseline"] == 1.0

    def test_short_history_is_insufficient(self):
        judged = judge_series([1.0, 1.0], T, "lower_better")
        assert judged["verdict"] == VERDICT_INSUFFICIENT
        assert judged["ratio"] is None

    def test_doubling_regresses(self):
        judged = judge_series([1.0, 1.0, 1.0, 2.0], T, "lower_better")
        assert judged["verdict"] == VERDICT_REGRESS
        assert judged["ratio"] == 2.0

    def test_warn_band(self):
        judged = judge_series([1.0, 1.0, 1.0, 1.15], T, "lower_better")
        assert judged["verdict"] == VERDICT_WARN

    def test_direction_flips_the_ratio(self):
        # a speedup *drop* to half is the same 2x degradation
        judged = judge_series([4.0, 4.0, 4.0, 2.0], T, "higher_better")
        assert judged["verdict"] == VERDICT_REGRESS
        assert judged["ratio"] == 2.0
        # and a speedup *gain* is fine
        assert judge_series([4.0, 4.0, 4.0, 8.0], T, "higher_better")[
            "verdict"
        ] == VERDICT_OK

    def test_median_baseline_resists_outliers(self):
        """One earlier outlier cannot drag the baseline."""
        judged = judge_series([1.0, 1.0, 100.0, 1.0, 1.0, 1.0], T, "lower_better")
        assert judged["baseline"] == 1.0

    def test_noise_guard_suppresses_jitter(self):
        """A +20% newest value on a series whose history already wobbles
        by ~20% is jitter, not regression — the spread inflates the
        thresholds past it."""
        noisy = judge_series([1.0, 1.1, 0.9, 1.05, 1.2], T, "lower_better")
        assert noisy["verdict"] == VERDICT_OK
        # the same +20% on a tight history is a real warning
        tight = judge_series([1.0, 1.0, 1.0, 1.0, 1.2], T, "lower_better")
        assert tight["verdict"] == VERDICT_WARN

    def test_rolling_window_bounds_the_baseline(self):
        """Runs older than the window no longer shape the baseline."""
        values = [9.0] * 10 + [1.0] * 8 + [1.05]
        judged = judge_series(values, T, "lower_better")
        assert judged["baseline"] == 1.0
        assert judged["verdict"] == VERDICT_OK

    def test_non_positive_values_yield_no_verdict(self):
        judged = judge_series([0.0, 0.0, 0.0, 0.0], T, "lower_better")
        assert judged["verdict"] == VERDICT_INSUFFICIENT

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            Thresholds(warn_ratio=1.0)
        with pytest.raises(ValueError):
            Thresholds(warn_ratio=1.3, regress_ratio=1.2)
        with pytest.raises(ValueError):
            Thresholds(min_history=1)
        with pytest.raises(ValueError):
            Thresholds(window=0)
        with pytest.raises(ValueError):
            Thresholds(noise_guard=-0.1)


def test_worst_verdict():
    assert worst_verdict([]) == VERDICT_OK
    assert worst_verdict([VERDICT_OK, VERDICT_WARN]) == VERDICT_WARN
    assert worst_verdict([VERDICT_INSUFFICIENT]) == VERDICT_INSUFFICIENT
    assert (
        worst_verdict([VERDICT_OK, VERDICT_REGRESS, VERDICT_WARN]) == VERDICT_REGRESS
    )


def test_sparkline():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0, 1.0]) == "▄▄▄"  # flat: mid-height, no trend
    line = sparkline([1.0, 2.0, 3.0, 8.0])
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    assert len(sparkline(list(range(100)))) == 16  # width-bounded


def history_store(runs, *, entry_mutator=None):
    """A store holding ``runs`` synthetic re-measurements of the
    committed fleet baseline, each with distinct stamps; the newest run
    passes through ``entry_mutator`` when given."""
    payload = json.loads((BENCH_DIR / "BENCH_fleet.json").read_text())
    store = TrendStore()
    for run in range(runs):
        copy = json.loads(json.dumps(payload))
        copy["git_sha"] = f"{run:040x}"
        copy["updated"] = f"2026-08-{run + 1:02d}T00:00:00Z"
        if entry_mutator is not None and run == runs - 1:
            for entry in copy["entries"].values():
                entry_mutator(entry)
        store.ingest_suite(copy)
    return store


def double_seconds(entry):
    for key, value in list(entry.items()):
        if key.endswith("seconds") and isinstance(value, (int, float)):
            entry[key] = value * 2.0


class TestAcceptanceScenario:
    def test_untouched_history_is_ok(self):
        store = history_store(4)
        verdicts = evaluate_trends(store)
        assert verdicts  # the fleet baseline has judged metrics
        assert worst_verdict(verdicts) == VERDICT_OK

    def test_synthetic_slowdown_regresses(self):
        """A copied baseline with doubled seconds in the newest run
        makes perf-trend report regress; the untouched series stay ok."""
        store = history_store(4, entry_mutator=double_seconds)
        verdicts = evaluate_trends(store)
        assert worst_verdict(verdicts) == VERDICT_REGRESS
        regressed = {v.metric for v in verdicts if v.verdict == VERDICT_REGRESS}
        assert any("seconds" in metric for metric in regressed)
        # metrics the mutation did not touch keep their clean verdict
        untouched = [
            v
            for v in verdicts
            if v.verdict != VERDICT_INSUFFICIENT
            and not v.metric.endswith("seconds")
        ]
        assert untouched
        assert all(v.verdict == VERDICT_OK for v in untouched)
        report = render_trend_report(store)
        assert "REGRESS" in report


class TestRenderTrendReport:
    def test_live_and_read_back_render_identically(self, tmp_path):
        store = history_store(4, entry_mutator=double_seconds)
        live = render_trend_report(store)
        path = store.save(tmp_path / "ledger.jsonl")
        assert render_trend_report(path) == live
        assert render_trend_report(TrendStore.load(path)) == live

    def test_empty_store_reports_no_verdicts(self):
        report = render_trend_report(TrendStore())
        assert "0 regress" in report
        assert "no judged metric series" in report
        assert "REGRESS" not in report

    def test_single_run_reports_insufficient_history(self):
        store = history_store(1)
        report = render_trend_report(store)
        assert "insufficient_history" in report
        assert "0 regress, 0 warn, 0 ok" in report
        assert worst_verdict(evaluate_trends(store)) == VERDICT_INSUFFICIENT

    def test_report_carries_the_trend_columns(self):
        report = render_trend_report(history_store(4))
        for column in ("suite", "entry", "metric", "trend", "delta_pct", "verdict"):
            assert column in report
        # sparklines made it into the table
        assert any(block in report for block in "▁▂▃▄▅▆▇█")

    def test_custom_thresholds_in_header(self):
        thresholds = Thresholds(warn_ratio=1.5, regress_ratio=3.0)
        report = render_trend_report(history_store(4), thresholds)
        assert "warn >= 1.50x" in report
        assert "regress >= 3.00x" in report
