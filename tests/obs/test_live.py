"""The live fleet monitor: progress, ETA, stalls, flushes, and the
observe-only contract.

Unit tests drive a :class:`~repro.obs.live.LiveMonitor` with synthetic
fleet telemetry and an injected clock (progress folding, analytic ETA,
stall detection at WARNING, incremental JSONL flushes at DEBUG, the
read-back contract).  The acceptance tests track the real cyclic-3
complex fleet with and without a monitor attached under **both**
execution backends and assert bitwise identity — endpoints, steps,
regrouping, launch sequences — plus the same for a monitored solo
``track_path``.
"""

from __future__ import annotations

import logging

import pytest

from repro.exec import use_backend
from repro.obs import LiveMonitor, Recorder, read_live_jsonl, recording
from repro.obs.events import NULL_RECORDER
from repro.poly import Homotopy, cyclic

CYCLIC3_KWARGS = dict(tol=1e-6, order=8, max_steps=4, precision_ladder=(1, 2))


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now


def make_monitor(path=None, **kwargs):
    clock = FakeClock()
    kwargs.setdefault("flush_interval", 10.0)
    kwargs.setdefault("stall_window", 60.0)
    return LiveMonitor(path, clock=clock, **kwargs), clock


def emit_step(recorder, path, t, step, precision="2d", model_ms=2.0):
    recorder.event(
        "step",
        category="step",
        path=path,
        t=t,
        step=step,
        precision=precision,
        model_ms=model_ms,
    )


class TestProgressFolding:
    def test_steps_advance_paths(self):
        monitor, _ = make_monitor()
        recorder = Recorder(label="unit")
        with monitor.watch(recorder):
            emit_step(recorder, 0, 0.0, 0.25)
            emit_step(recorder, 0, 0.25, 0.25, precision="4d")
            emit_step(recorder, 1, 0.0, 0.5)
        progress = monitor.paths[0]
        assert progress.accepted == 2
        assert progress.t == 0.5
        assert progress.precision == "4d"
        assert progress.model_ms == 4.0
        assert monitor.paths[1].t == 0.5
        assert monitor.active_count() == 2

    def test_rejections_escalations_and_endings(self):
        monitor, _ = make_monitor()
        recorder = Recorder()
        with monitor.watch(recorder):
            recorder.event("step_rejected", category="step", path=0, t=0.0)
            recorder.event(
                "escalation",
                category="step",
                path=0,
                t=0.0,
                from_precision="2d",
                to_precision="4d",
            )
            emit_step(recorder, 0, 0.0, 1.0, precision="4d")
            recorder.event(
                "path_retired", category="path", path=0, t=1.0, reached=True
            )
            recorder.event(
                "path_failed", category="path", path=1, t=0.3, reason="singular"
            )
            recorder.event("sub_batch", category="step", round=1, paths=[0, 1])
        assert monitor.paths[0].rejected == 1
        assert monitor.paths[0].escalations == 1
        assert monitor.paths[0].status == "retired"
        assert monitor.paths[0].reached is True
        assert monitor.paths[1].status == "failed"
        assert monitor.paths[1].t == 0.3
        assert monitor.sub_batches == 1
        assert monitor.active_count() == 0
        snapshot = monitor.progress()
        assert snapshot["retired"] == 1
        assert snapshot["failed"] == 1
        assert snapshot["reached"] == 1

    def test_eta_from_the_cost_model(self):
        """Mean accepted step 0.1 at mean 2 model-ms per step, t at 0.5:
        the remaining 0.5 extrapolates to 5 more steps = 10 model-ms."""
        monitor, _ = make_monitor()
        recorder = Recorder()
        with monitor.watch(recorder):
            for i in range(5):
                emit_step(recorder, 0, 0.1 * i, 0.1, model_ms=2.0)
        assert monitor.paths[0].t == pytest.approx(0.5)
        assert monitor.eta_model_ms() == pytest.approx(10.0)
        # retired paths stop contributing (watch() detached on exit, so
        # hand the record to the sink directly)
        monitor.observe(
            recorder.event("path_retired", category="path", path=0, t=1.0, reached=True)
        )
        assert monitor.eta_model_ms() is None

    def test_eta_unknown_before_first_step(self):
        monitor, _ = make_monitor()
        recorder = Recorder()
        with monitor.watch(recorder):
            recorder.event("step_rejected", category="step", path=0, t=0.0)
            assert monitor.eta_model_ms() is None

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            LiveMonitor(flush_interval=0.0)
        with pytest.raises(ValueError):
            LiveMonitor(stall_window=-1.0)


class TestStallDetection:
    def test_stall_fires_once_per_window(self, caplog):
        monitor, clock = make_monitor(stall_window=30.0)
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.1)
        clock.now = 10.0
        assert monitor.check_stall() is False
        clock.now = 45.0
        with caplog.at_level(logging.WARNING, logger="repro"):
            assert monitor.check_stall() is True
        assert monitor.stalls == 1
        assert any("stall" in r.message for r in caplog.records)
        assert caplog.records[-1].levelno == logging.WARNING
        # within the same window: no second page
        clock.now = 50.0
        assert monitor.check_stall() is False
        # a fresh window without progress pages again
        clock.now = 80.0
        assert monitor.check_stall() is True
        assert monitor.stalls == 2
        monitor.detach()

    def test_progress_resets_the_stall_timer(self):
        monitor, clock = make_monitor(stall_window=30.0)
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.1)
        clock.now = 45.0
        emit_step(recorder, 0, 0.1, 0.1)
        clock.now = 60.0  # only 15 s since the last accepted step
        assert monitor.check_stall() is False
        monitor.detach()

    def test_finished_fleet_never_stalls(self):
        monitor, clock = make_monitor(stall_window=30.0)
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 1.0)
        recorder.event("path_retired", category="path", path=0, t=1.0, reached=True)
        clock.now = 1000.0
        assert monitor.check_stall() is False
        assert monitor.stalls == 0
        monitor.detach()

    def test_heartbeat_records_and_logs_debug(self, caplog):
        monitor, clock = make_monitor()
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.5)
        clock.now = 3.0
        with caplog.at_level(logging.DEBUG, logger="repro"):
            entry = monitor.heartbeat()
        assert entry["kind"] == "heartbeat"
        assert entry["elapsed_s"] == 3.0
        assert entry["active"] == 1
        assert entry in monitor.events
        beat = [r for r in caplog.records if "heartbeat" in r.message]
        assert beat and all(r.levelno == logging.DEBUG for r in beat)
        monitor.detach()


class TestIncrementalFlush:
    def test_flush_appends_and_reads_back(self, tmp_path, caplog):
        path = tmp_path / "live.jsonl"
        monitor, clock = make_monitor(path)
        recorder = Recorder(label="flush-unit")
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.25)
        with caplog.at_level(logging.DEBUG, logger="repro"):
            monitor.flush()
        assert monitor.flushes == 1
        assert any("live flush" in r.message for r in caplog.records)

        first = path.read_text()
        emit_step(recorder, 0, 0.25, 0.25)
        monitor.flush()
        second = path.read_text()
        assert second.startswith(first)  # append-only stream

        back = read_live_jsonl(path)
        assert back["label"] == "flush-unit"
        assert [r.to_dict() for r in back["records"]] == [
            r.to_dict() for r in recorder.records
        ]
        assert len(back["progress"]) == 2
        assert back["progress"][-1]["seq"] == 1
        assert back["progress"][-1]["paths"][0]["t"] == 0.5
        monitor.detach()

    def test_opportunistic_flush_on_interval(self, tmp_path):
        path = tmp_path / "live.jsonl"
        monitor, clock = make_monitor(path, flush_interval=5.0)
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.1)
        assert monitor.flushes == 0  # interval not reached yet
        clock.now = 6.0
        emit_step(recorder, 0, 0.1, 0.1)
        assert monitor.flushes == 1  # observing the record flushed
        monitor.detach()

    def test_watch_scope_flushes_on_exit(self, tmp_path):
        path = tmp_path / "live.jsonl"
        monitor, _ = make_monitor(path)
        recorder = Recorder()
        with monitor.watch(recorder):
            emit_step(recorder, 0, 0.0, 0.5)
        assert path.exists()
        back = read_live_jsonl(path)
        assert back["records"] and back["progress"]
        # detached: further records are not observed
        emit_step(recorder, 0, 0.5, 0.5)
        assert monitor.paths[0].accepted == 1

    def test_unbound_monitor_flushes_in_memory(self):
        monitor, _ = make_monitor()
        recorder = Recorder()
        with monitor.watch(recorder):
            emit_step(recorder, 0, 0.0, 0.5)
        snapshot = monitor.flush()
        assert snapshot["kind"] == "progress"
        assert monitor.flushes >= 1

    def test_read_back_requires_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "progress"}\n')
        with pytest.raises(ValueError, match="no header"):
            read_live_jsonl(path)


class TestBackgroundThread:
    def test_start_stop_polls(self, tmp_path):
        monitor, _ = make_monitor(tmp_path / "live.jsonl", flush_interval=0.01)
        recorder = Recorder()
        monitor.attach(recorder)
        emit_step(recorder, 0, 0.0, 0.1)
        monitor.start(interval=0.01)
        monitor.start(interval=0.01)  # idempotent
        import time as _time

        _time.sleep(0.05)
        monitor.stop()
        monitor.stop()  # idempotent
        monitor.detach()
        # the poll thread used the fake clock for decisions but still
        # folded pending records into at least one flush
        assert monitor.flushes >= 0


def fleet_fingerprint(fleet):
    return {
        "steps": [path.steps for path in fleet.paths],
        "final_t": [path.final_t for path in fleet.paths],
        "reached": [path.reached for path in fleet.paths],
        "points": [
            [complex(v) for v in path.final_point] for path in fleet.paths
        ],
        "sub_batches": fleet.sub_batches,
        "fleet_model_ms": fleet.fleet_model_ms,
        "launches": [
            [launch.name for launch in trace.launches]
            for trace in fleet.round_traces
        ],
    }


class TestMonitoringIsObserveOnly:
    """The acceptance contract: monitored == unmonitored, bitwise,
    on the cyclic-3 complex fleet under both execution backends."""

    @pytest.fixture(scope="class")
    def homotopy(self):
        return Homotopy.total_degree(cyclic(3), seed=7, backend="complex")

    @pytest.mark.parametrize("backend", ["generic", "fused"])
    def test_fleet_bitwise_identical_under_monitor(
        self, homotopy, backend, tmp_path_factory
    ):
        path = tmp_path_factory.mktemp("live") / f"cyclic3_{backend}.jsonl"
        with use_backend(backend):
            reference = homotopy.track_fleet(**CYCLIC3_KWARGS)
            monitor = LiveMonitor(path, flush_interval=0.001)
            observed = homotopy.track_fleet(monitor=monitor, **CYCLIC3_KWARGS)
        assert fleet_fingerprint(observed) == fleet_fingerprint(reference)
        # the monitor genuinely watched the run
        assert len(monitor.paths) == len(reference.paths)
        assert monitor.active_count() == 0
        assert monitor.sub_batches == len(reference.sub_batches)
        back = read_live_jsonl(path)
        assert back["records"]
        assert back["progress"][-1]["paths"]

    def test_solo_track_bitwise_identical_under_monitor(self, homotopy):
        reference = homotopy.track(**CYCLIC3_KWARGS)
        monitor = LiveMonitor()
        observed = homotopy.track(monitor=monitor, **CYCLIC3_KWARGS)
        assert observed.steps == reference.steps
        assert observed.final_t == reference.final_t
        assert [complex(v) for v in observed.final_point] == [
            complex(v) for v in reference.final_point
        ]
        (progress,) = monitor.paths.values()
        assert progress.accepted == reference.step_count
        assert progress.status == "retired"

    def test_monitor_rides_an_active_recording(self, homotopy):
        """Inside a recording scope the monitor attaches to the active
        recorder instead of its own — one telemetry stream, two
        consumers."""
        with recording(label="monitored") as recorder:
            monitor = LiveMonitor()
            homotopy.track_fleet(monitor=monitor, **CYCLIC3_KWARGS)
        assert recorder.spans("track_paths", "run")
        assert monitor.paths
        assert monitor._owned_recorder is None  # private recorder unused
        # detached on exit: the outer recorder keeps working solo
        recorder.event("after", category="run")
        assert "after" not in {
            progress.path for progress in monitor.paths.values()
        }

    def test_null_recorder_subscription_is_a_noop(self):
        sink = NULL_RECORDER.subscribe(lambda record: None)
        assert sink is not None
        NULL_RECORDER.unsubscribe(sink)
