"""End-to-end backend-swap contracts on a tracked complex fleet.

Two acceptance properties of the execution-backend boundary:

* a cyclic-3 dd complex fleet tracked under the ``fused`` backend is
  **bit-identical** to the ``generic`` run — endpoints, step records,
  regrouping history, and the launch sequences of every round;
* the ``@profiled`` span names are part of the observability contract:
  swapping the backend changes *no* span name, and
  ``predicted_vs_measured`` on a recorded fused run has every profiled
  stage populated with both milliseconds columns.
"""

from __future__ import annotations

import pytest

from repro.exec import use_backend
from repro.obs import predicted_vs_measured, recording
from repro.poly import Homotopy, cyclic

FLEET_KWARGS = dict(tol=1e-8, order=8, max_steps=3, precision_ladder=(2,))

#: The profiled span names of one tracked fleet — pinned: a backend
#: swap (or any other execution change) must not rename them, or the
#: telemetry history across PRs stops lining up.
PINNED_SPANS = {
    "track_paths",
    "fleet_expansion",
    "batched_qr",
    "batched_back_substitution",
    "batched_lstsq",
    "batched_pade",
    "poly_eval_series",
}


def launch_names(trace):
    return [launch.name for launch in trace.launches]


@pytest.fixture(scope="module")
def homotopy():
    return Homotopy.total_degree(cyclic(3), seed=7, backend="complex")


@pytest.fixture(scope="module")
def runs(homotopy):
    with use_backend("generic"):
        with recording(label="generic fleet") as generic_recorder:
            generic_fleet = homotopy.track_fleet(**FLEET_KWARGS)
    with use_backend("fused"):
        with recording(label="fused fleet") as fused_recorder:
            fused_fleet = homotopy.track_fleet(**FLEET_KWARGS)
    return generic_fleet, fused_fleet, generic_recorder, fused_recorder


def test_fleet_endpoints_and_steps_identical(runs):
    generic_fleet, fused_fleet, _, _ = runs
    assert generic_fleet.batch == fused_fleet.batch
    for ref_path, fus_path in zip(generic_fleet.paths, fused_fleet.paths):
        assert ref_path.steps == fus_path.steps
        assert ref_path.final_t == fus_path.final_t
        assert ref_path.reached == fus_path.reached
        assert ref_path.escalations == fus_path.escalations
        assert ref_path.precisions_used == fus_path.precisions_used
        assert [complex(v) for v in ref_path.final_point] == [
            complex(v) for v in fus_path.final_point
        ]


def test_fleet_launch_sequences_identical(runs):
    generic_fleet, fused_fleet, _, _ = runs
    assert generic_fleet.sub_batches == fused_fleet.sub_batches
    assert generic_fleet.fleet_model_ms == fused_fleet.fleet_model_ms
    assert [launch_names(t) for t in generic_fleet.round_traces] == [
        launch_names(t) for t in fused_fleet.round_traces
    ]


def test_span_names_stable_across_backend_swap(runs):
    _, _, generic_recorder, fused_recorder = runs
    generic_spans = [
        record.name for record in generic_recorder.records if record.kind == "span"
    ]
    fused_spans = [
        record.name for record in fused_recorder.records if record.kind == "span"
    ]
    assert generic_spans == fused_spans
    assert PINNED_SPANS <= set(generic_spans)


def test_predicted_vs_measured_populated_under_fused(runs):
    _, _, _, fused_recorder = runs
    rows = predicted_vs_measured(fused_recorder)
    assert rows, "no profiled spans carried both milliseconds columns"
    names = {row["span"] for row in rows}
    assert {
        "fleet_expansion",
        "batched_qr",
        "batched_back_substitution",
        "batched_lstsq",
    } <= names
    for row in rows:
        assert row["calls"] > 0
        assert row["measured_ms"] > 0.0
        assert row["predicted_ms"] > 0.0
        assert row["launches"] > 0
