"""Bitwise identity of the fused backend against the generic reference.

The whole point of :mod:`repro.exec.fused` is that it reorganizes
*execution* (scratch buffers, ``out=`` chains, stacked limb EFTs,
cached index grids, L2 tiling) without touching a single float
*operation* — same EFT formulas, same reduction trees, same
renormalization order.  IEEE arithmetic is deterministic, so every
result must match the generic backend bit for bit, at every precision,
on every shape, zeros and broadcasts included.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exec import FusedBackend, GenericBackend, use_backend
from repro.vec.complexmd import MDComplexArray
from repro.vec.mdarray import MDArray, pairwise_reduce

SHAPES = [(), (5,), (32, 8), (7, 1), (3, 4, 2)]


@pytest.fixture(scope="module")
def generic():
    return GenericBackend()


@pytest.fixture(scope="module")
def fused():
    return FusedBackend()


def sample(rng, limbs, shape):
    """A valid limb-major stack with exact zeros sprinkled into the
    lower limbs (they exercise the renormalization swap passes)."""
    data = rng.standard_normal((limbs, *shape))
    for k in range(1, limbs):
        data[k] = data[k - 1] * 2.0**-53 * rng.standard_normal(shape)
    if limbs > 1 and shape:
        flat = data.reshape(limbs, -1)
        cols = rng.integers(0, flat.shape[1], size=max(1, flat.shape[1] // 5))
        flat[rng.integers(1, limbs, size=cols.size), cols] = 0.0
    return data


def assert_identical(result, reference):
    __tracebackhide__ = True
    assert result.shape == reference.shape
    assert np.array_equal(result, reference, equal_nan=True)


class TestBackendOps:
    """Raw backend surface at d/dd/qd/od across shapes."""

    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_binary_ops(self, generic, fused, rng, limbs, shape, op):
        x = sample(rng, limbs, shape)
        y = sample(rng, limbs, shape)
        assert_identical(getattr(fused, op)(x, y), getattr(generic, op)(x, y))

    @pytest.mark.parametrize("shape", SHAPES, ids=str)
    def test_sqr_fma_sqrt(self, generic, fused, rng, limbs, shape):
        x = sample(rng, limbs, shape)
        y = sample(rng, limbs, shape)
        z = sample(rng, limbs, shape)
        assert_identical(fused.sqr(x), generic.sqr(x))
        assert_identical(fused.fma(x, y, z), generic.fma(x, y, z))
        positive = np.abs(x)
        assert_identical(fused.sqrt(positive), generic.sqrt(positive))

    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_broadcast(self, generic, fused, rng, limbs, op):
        x = sample(rng, limbs, (7, 1))
        y = sample(rng, limbs, (1, 6))
        assert_identical(getattr(fused, op)(x, y), getattr(generic, op)(x, y))

    @pytest.mark.parametrize("op", ["add", "mul"])
    def test_scalar_mixed(self, generic, fused, rng, limbs, op):
        x = sample(rng, limbs, ())
        y = sample(rng, limbs, (5,))
        assert_identical(getattr(fused, op)(x, y), getattr(generic, op)(x, y))

    def test_renormalize(self, generic, fused, rng, limbs):
        for terms in (max(1, limbs - 1), limbs, limbs + 2, 2 * limbs):
            planes = []
            scale = 1.0
            for _ in range(terms):
                planes.append(rng.standard_normal((6, 3)) * scale)
                scale *= 2.0**-50
            assert_identical(
                fused.renormalize(planes, limbs), generic.renormalize(planes, limbs)
            )

    def test_tiled_large_launch(self, generic, fused, rng, limbs):
        """Shapes past the L2-tiling threshold chunk internally — the
        chunks must reproduce the one-shot floats exactly."""
        x = sample(rng, limbs, (70000,))
        y = sample(rng, limbs, (70000,))
        assert_identical(fused.add(x, y), generic.add(x, y))
        assert_identical(fused.mul(x, y), generic.mul(x, y))


class TestLaunchHooks:
    """The value-neutral data-movement hooks."""

    @pytest.mark.parametrize("terms", [1, 3, 5, 33])
    def test_gather_antidiagonals(self, generic, fused, rng, terms):
        data = rng.standard_normal((2, 4, terms, terms))
        assert_identical(
            fused.gather_antidiagonals(data, terms),
            generic.gather_antidiagonals(data, terms),
        )

    @pytest.mark.parametrize("n", [2, 3, 5, 8, 33])
    def test_pairwise_reduce(self, generic, fused, rng, n):
        data = rng.standard_normal((2, n, 6))

        def combine(a, b):
            return GenericBackend().add(a, b, 2)

        def pad(shape):
            return np.zeros(shape)

        with use_backend(generic):
            reference = pairwise_reduce(data, 1, combine, pad)
        with use_backend(fused):
            result = pairwise_reduce(data, 1, combine, pad)
        assert_identical(result, reference)


class TestArrayLayer:
    """MDArray / MDComplexArray arithmetic under a swapped backend."""

    def _pair(self, rng, limbs, shape=(4, 5)):
        return (
            MDArray(sample(rng, limbs, shape)),
            MDArray(sample(rng, limbs, shape)),
        )

    def test_mdarray_arithmetic(self, rng, limbs):
        a, b = self._pair(rng, limbs)
        with use_backend("generic"):
            reference = ((a + b) * a - b / a).data.copy()
            summed = (a * b).sum(axis=0).data.copy()
        with use_backend("fused"):
            result = ((a + b) * a - b / a).data
            fused_sum = (a * b).sum(axis=0).data
        assert_identical(result, reference)
        assert_identical(fused_sum, summed)

    def test_mdarray_astype(self, rng, limbs):
        a, _ = self._pair(rng, limbs)
        for target in (1, 2, 4, 8):
            with use_backend("generic"):
                reference = a.astype(target).data.copy()
            with use_backend("fused"):
                result = a.astype(target).data
            assert_identical(result, reference)

    def test_complex_arithmetic(self, rng, md_limbs):
        re1, im1 = self._pair(rng, md_limbs)
        re2, im2 = self._pair(rng, md_limbs)
        x = MDComplexArray(re1, im1)
        y = MDComplexArray(re2, im2)
        with use_backend("generic"):
            ref = ((x + y) * x - y / x) * x.conj()
            ref_real, ref_imag = ref.real.data.copy(), ref.imag.data.copy()
            ref_abs = x.abs().data.copy()
        with use_backend("fused"):
            out = ((x + y) * x - y / x) * x.conj()
            out_abs = x.abs().data
        assert_identical(out.real.data, ref_real)
        assert_identical(out.imag.data, ref_imag)
        assert_identical(out_abs, ref_abs)
