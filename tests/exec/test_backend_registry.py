"""Selection contract of the execution-backend registry.

``get_backend``/``set_backend``/``use_backend`` plus the
``REPRO_EXEC_BACKEND`` environment switch — the surface a CuPy/JAX
module drop-in plugs into via ``register_backend``.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.exec.backend as backend_module
from repro.exec import (
    ENV_VAR,
    ExecutionBackend,
    FusedBackend,
    GenericBackend,
    available_backends,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)


@pytest.fixture
def restore_backend():
    """Snapshot and restore the process-wide active backend."""
    previous = backend_module._active
    yield
    backend_module._active = previous


def test_builtin_backends_registered():
    names = available_backends()
    assert "generic" in names
    assert "fused" in names


def test_default_backend_is_generic(restore_backend, monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    backend_module._active = None
    assert get_backend().name == "generic"
    assert isinstance(get_backend(), GenericBackend)


def test_env_var_selects_backend(restore_backend, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "fused")
    backend_module._active = None
    backend = get_backend()
    assert backend.name == "fused"
    assert isinstance(backend, FusedBackend)


def test_env_var_unknown_name_raises(restore_backend, monkeypatch):
    monkeypatch.setenv(ENV_VAR, "cuda-someday")
    backend_module._active = None
    with pytest.raises(ValueError, match="cuda-someday"):
        get_backend()


def test_set_backend_by_name_and_instance(restore_backend):
    assert set_backend("fused").name == "fused"
    assert get_backend().name == "fused"
    instance = GenericBackend()
    assert set_backend(instance) is instance
    assert get_backend() is instance


def test_set_backend_rejects_non_backend(restore_backend):
    with pytest.raises(TypeError):
        set_backend(42)


def test_use_backend_scopes_and_restores(restore_backend):
    set_backend("generic")
    with use_backend("fused") as fused:
        assert get_backend() is fused
        assert fused.name == "fused"
    assert get_backend().name == "generic"


def test_use_backend_restores_on_error(restore_backend):
    set_backend("generic")
    with pytest.raises(RuntimeError):
        with use_backend("fused"):
            raise RuntimeError("boom")
    assert get_backend().name == "generic"


def test_register_backend_round_trip(restore_backend):
    class ProbeBackend(GenericBackend):
        name = "probe"

    register_backend("probe", ProbeBackend)
    try:
        assert "probe" in available_backends()
        with use_backend("probe") as probe:
            assert isinstance(probe, ProbeBackend)
    finally:
        backend_module._FACTORIES.pop("probe", None)


def test_backend_owns_array_module_and_arena():
    backend = FusedBackend()
    assert backend.xp is np
    assert backend.arena.xp is np
    assert isinstance(backend, ExecutionBackend)


def test_arena_stats_report_bundle_reuse():
    backend = FusedBackend()
    x = np.array([[1.5, 2.5], [1e-20, 2e-20]])
    backend.mul(x, x)
    allocated = backend.arena.stats["allocated"]
    assert allocated > 0
    backend.mul(x, x)
    stats = backend.arena.stats
    assert stats["allocated"] == allocated  # second launch reuses
    assert stats["reused"] > 0
    assert stats["bundles"] > 0
