"""The analytic cost model must agree exactly with the numeric drivers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.back_substitution import tiled_back_substitution
from repro.core.blocked_qr import blocked_qr
from repro.core.least_squares import lstsq
from repro.perf.costmodel import (
    back_substitution_trace,
    lstsq_trace,
    problem_bytes,
    qr_trace,
)
from repro.vec import random as mdrandom


def assert_traces_match(analytic, numeric):
    """Launch-by-launch comparison of two traces."""
    assert len(analytic) == len(numeric)
    for model_launch, real_launch in zip(analytic.launches, numeric.launches):
        assert model_launch.stage == real_launch.stage
        assert model_launch.name == real_launch.name
        assert model_launch.blocks == real_launch.blocks
        assert model_launch.threads_per_block == real_launch.threads_per_block
        assert model_launch.limbs == real_launch.limbs
        assert model_launch.efficiency == real_launch.efficiency
        assert model_launch.bytes_read == pytest.approx(real_launch.bytes_read)
        assert model_launch.bytes_written == pytest.approx(real_launch.bytes_written)
        assert model_launch.tally.as_dict() == pytest.approx(real_launch.tally.as_dict())


class TestQRTraceAgreement:
    @pytest.mark.parametrize(
        "rows,cols,tile,limbs,complex_data",
        [
            (16, 16, 4, 2, False),
            (20, 12, 4, 2, False),
            (12, 12, 6, 4, False),
            (10, 10, 5, 2, True),
        ],
    )
    def test_matches_numeric_trace(self, rows, cols, tile, limbs, complex_data, rng):
        if complex_data:
            a = mdrandom.random_complex_matrix(rows, cols, limbs, rng)
        else:
            a = mdrandom.random_matrix(rows, cols, limbs, rng)
        numeric = blocked_qr(a, tile).trace
        analytic = qr_trace(rows, cols, tile, limbs, complex_data=complex_data)
        assert_traces_match(analytic, numeric)

    def test_validation(self):
        with pytest.raises(ValueError):
            qr_trace(8, 16, 4, 2)
        with pytest.raises(ValueError):
            qr_trace(16, 16, 5, 2)

    def test_total_flops_scale_cubically_with_proportional_tiles(self):
        # keeping the number of panels fixed, the work is cubic in the dimension
        small = qr_trace(256, 256, 32, 4).total_flops()
        large = qr_trace(512, 512, 64, 4).total_flops()
        assert 6 < large / small < 9

    def test_fixed_tile_size_grows_faster_than_cubic(self):
        # with a fixed panel width the explicit Y*W^T / Q*WY^T products add a
        # quartic term, which is why the paper's Table 6 times grow by more
        # than a factor of eight per dimension doubling
        small = qr_trace(256, 256, 32, 4).total_flops()
        large = qr_trace(512, 512, 32, 4).total_flops()
        assert large / small > 9


class TestBackSubstitutionTraceAgreement:
    @pytest.mark.parametrize(
        "tiles,tile,limbs,complex_data",
        [(4, 4, 2, False), (3, 5, 4, False), (5, 2, 2, True), (1, 6, 2, False)],
    )
    def test_matches_numeric_trace(self, tiles, tile, limbs, complex_data, rng):
        dim = tiles * tile
        u = mdrandom.random_well_conditioned_upper_triangular(dim, limbs, rng, complex_data=complex_data)
        if complex_data:
            b = mdrandom.random_complex_vector(dim, limbs, rng)
        else:
            b = mdrandom.random_vector(dim, limbs, rng)
        numeric = tiled_back_substitution(u, b, tile).trace
        analytic = back_substitution_trace(tiles, tile, limbs, complex_data=complex_data)
        assert_traces_match(analytic, numeric)

    def test_validation(self):
        with pytest.raises(ValueError):
            back_substitution_trace(0, 4, 2)
        with pytest.raises(ValueError):
            back_substitution_trace(4, 0, 2)

    def test_total_flops_scale_quadratically(self):
        small = back_substitution_trace(40, 32, 4).total_flops()
        large = back_substitution_trace(80, 32, 4).total_flops()
        assert 3 < large / small < 5


class TestLstsqTraceAgreement:
    def test_matches_numeric_traces(self, rng):
        a = mdrandom.random_matrix(16, 16, 2, rng)
        b = mdrandom.random_vector(16, 2, rng)
        result = lstsq(a, b, tile_size=4)
        qr_model, bs_model = lstsq_trace(16, 16, 4, 2)
        assert_traces_match(qr_model, result.qr_trace)
        assert_traces_match(bs_model, result.bs_trace)

    def test_problem_bytes(self):
        base = problem_bytes(100, 50, 4, with_q=False)
        assert base == (100 * 50 + 100) * 4 * 8
        assert problem_bytes(100, 50, 4) > base
        assert problem_bytes(10, 10, 2, complex_data=True) == 2 * problem_bytes(10, 10, 2)
