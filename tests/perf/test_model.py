"""Tests for the kernel/wall time performance model."""

from __future__ import annotations

import pytest

from repro.gpu import KernelLaunch, OperationTally, get_device
from repro.perf.costmodel import back_substitution_trace, problem_bytes, qr_trace
from repro.perf.model import DEFAULT_ILP, PerformanceModel


def qr_run(device, limbs, dim=1024, tile=128):
    model = PerformanceModel(device)
    trace = qr_trace(dim, dim, tile, limbs, device)
    return model.attribute(trace, problem_bytes=problem_bytes(dim, dim, limbs))


class TestLaunchModel:
    def _launch(self, **kwargs):
        defaults = dict(
            name="k",
            stage="s",
            blocks=80,
            threads_per_block=128,
            limbs=4,
            tally=OperationTally.axpy(1_000_000),
            bytes_read=1e6,
            bytes_written=1e6,
        )
        defaults.update(kwargs)
        return KernelLaunch(**defaults)

    def test_time_positive_and_additive_overhead(self):
        model = PerformanceModel("V100")
        empty = self._launch(tally=OperationTally(), bytes_read=0, bytes_written=0)
        assert model.kernel_time_ms(empty) == pytest.approx(
            get_device("V100").kernel_launch_overhead_us * 1e-3
        )
        assert model.kernel_time_ms(self._launch()) > model.kernel_time_ms(empty)

    def test_more_flops_take_longer(self):
        model = PerformanceModel("V100")
        small = self._launch(tally=OperationTally.axpy(1e5))
        large = self._launch(tally=OperationTally.axpy(1e7))
        assert model.kernel_time_ms(large) > model.kernel_time_ms(small)

    def test_low_occupancy_is_slower(self):
        model = PerformanceModel("V100")
        full = self._launch(blocks=80)
        single = self._launch(blocks=1)
        assert model.kernel_time_ms(single) > model.kernel_time_ms(full)

    def test_small_blocks_hide_less_latency(self):
        model = PerformanceModel("V100")
        wide = self._launch(threads_per_block=128)
        narrow = self._launch(threads_per_block=32)
        assert model.kernel_time_ms(narrow) > model.kernel_time_ms(wide)

    def test_efficiency_hint_slows_kernel(self):
        model = PerformanceModel("V100")
        streaming = self._launch()
        serial = self._launch(efficiency=0.4)
        assert model.kernel_time_ms(serial) > model.kernel_time_ms(streaming)

    def test_memory_bound_kernel_limited_by_bandwidth(self):
        model = PerformanceModel("V100")
        launch = self._launch(tally=OperationTally.axpy(10), bytes_read=1e9, bytes_written=1e9)
        # 2 GB over ~0.6 TB/s effective: milliseconds, far above the compute time
        assert model.kernel_time_ms(launch) > 1.0

    def test_ilp_factor_interpolation(self):
        model = PerformanceModel("V100")
        assert model.ilp_factor(2) == pytest.approx(DEFAULT_ILP[2])
        assert DEFAULT_ILP[2] < model.ilp_factor(3) < DEFAULT_ILP[4]
        assert model.ilp_factor(16) == pytest.approx(DEFAULT_ILP[8])

    def test_rtx_precision_scaling_flatter(self):
        volta = PerformanceModel("V100")
        turing = PerformanceModel("RTX2080")
        assert turing.ilp_factor(8) / turing.ilp_factor(2) < volta.ilp_factor(8) / volta.ilp_factor(2)

    def test_attainable_never_exceeds_scaled_peak(self):
        model = PerformanceModel("P100")
        launch = self._launch(blocks=560, threads_per_block=1024, limbs=8)
        peak = get_device("P100").peak_double_gflops
        assert model.attainable_gflops(launch) <= peak * 1.6  # ILP(8) * efficiency bound


class TestTraceAttribution:
    def test_attribute_fills_elapsed(self):
        trace = back_substitution_trace(8, 32, 4)
        run = PerformanceModel("V100").attribute(trace, problem_bytes=1e6)
        assert all(launch.elapsed_ms is not None for launch in trace.launches)
        assert run.kernel_ms == pytest.approx(trace.kernel_time_ms())
        assert run.wall_ms > run.kernel_ms
        assert run.wall_gigaflops < run.kernel_gigaflops

    def test_oversubscription_penalty(self):
        trace_a = back_substitution_trace(8, 32, 8)
        trace_b = back_substitution_trace(8, 32, 8)
        model = PerformanceModel("V100")
        normal = model.attribute(trace_a, problem_bytes=1e8)
        swamped = model.attribute(trace_b, problem_bytes=1e8, oversubscribed=True)
        assert swamped.host_ms > 10 * normal.host_ms
        assert swamped.wall_ms > normal.wall_ms


class TestPaperShapeClaims:
    """The headline observations of the paper must hold in the model."""

    def test_teraflop_qr_at_1024_dd_on_p100_and_v100(self):
        for device in ("P100", "V100"):
            assert qr_run(device, 2).kernel_gigaflops > 1000.0

    def test_no_teraflop_on_older_or_consumer_gpus(self):
        for device in ("C2050", "K20C", "RTX2080"):
            assert qr_run(device, 2).kernel_gigaflops < 1000.0

    def test_performance_increases_with_precision(self):
        for device in ("P100", "V100"):
            rates = [qr_run(device, limbs).kernel_gigaflops for limbs in (1, 2, 4, 8)]
            assert rates == sorted(rates)

    def test_overhead_factors_below_predicted(self):
        for device in ("P100", "V100", "RTX2080"):
            t = {limbs: qr_run(device, limbs).kernel_ms for limbs in (2, 4, 8)}
            assert t[4] / t[2] < 11.7
            assert t[8] / t[4] < 5.4

    def test_v100_faster_than_p100(self):
        assert qr_run("V100", 4).kernel_ms < qr_run("P100", 4).kernel_ms

    def test_backsub_needs_large_dimensions_for_teraflop(self):
        model = PerformanceModel("V100")
        small = model.attribute(back_substitution_trace(80, 32, 4))
        large = model.attribute(back_substitution_trace(80, 256, 4))
        assert small.trace.kernel_gigaflops() < 500.0
        assert large.trace.kernel_gigaflops() > small.trace.kernel_gigaflops() * 3

    def test_wall_clock_much_larger_than_kernel_time_for_backsub(self):
        model = PerformanceModel("V100")
        dim = 80 * 128
        trace = back_substitution_trace(80, 128, 4)
        run = model.attribute(trace, problem_bytes=dim * dim / 2 * 4 * 8)
        assert run.wall_ms > 3 * run.kernel_ms
