"""Tests for the experiment harness (tables/figures) and the report."""

from __future__ import annotations

import pytest

from repro.perf import experiments, paper_data, report


class TestTable1And2:
    def test_table1_contains_paper_and_measured(self):
        result = experiments.table1_operation_counts()
        assert [row["limbs"] for row in result.rows] == [2, 4, 8]
        for row in result.rows:
            assert row["paper_div"] == paper_data.TABLE1_COUNTS[row["limbs"]]["div"]
            assert row["measured_div"] > 0

    def test_table2_matches_catalog(self):
        result = experiments.table2_devices()
        assert len(result.rows) == 5
        v100 = next(r for r in result.rows if "V100" in r["device"])
        assert v100["multiprocessors"] == 80 and v100["cores"] == 5120


class TestQRTables:
    def test_table3_five_devices_and_stages(self):
        result = experiments.table3_qr_dd_five_gpus()
        assert len(result.rows) == 5
        for row in result.rows:
            assert row["kernel_ms"] > 0
            assert row["paper_kernel_ms"] is not None
            assert "stage[compute W]" in row
        rates = {row["device"]: row["kernel_gflops"] for row in result.rows}
        assert rates["P100"] > 1000 and rates["V100"] > 1000
        assert rates["V100"] > rates["P100"] > rates["RTX2080"]
        assert rates["C2050"] < 200

    def test_table4_precisions_and_reference(self):
        result = experiments.table4_qr_four_precisions()
        assert len(result.rows) == 12
        v100 = {row["limbs"]: row for row in result.rows if row["device"] == "V100"}
        assert v100[8]["kernel_ms"] > v100[4]["kernel_ms"] > v100[2]["kernel_ms"]
        assert v100[4]["paper_kernel_gflops"] == pytest.approx(3214.0)
        # the reproduced flop rates stay within 20% of the paper's
        for limbs in (2, 4, 8):
            ratio = v100[limbs]["kernel_gflops"] / v100[limbs]["paper_kernel_gflops"]
            assert 0.8 < ratio < 1.2

    def test_figure1_log_times(self):
        result = experiments.figure1_qr_precision_scaling()
        assert all(row["limbs"] in (2, 4, 8) for row in result.rows)
        assert all(row["log2_kernel_ms"] > 0 for row in result.rows)

    def test_table5_real_vs_complex(self):
        result = experiments.table5_real_vs_complex()
        assert len(result.rows) == 8
        real = {row["tiling"]: row for row in result.rows if row["data"] == "real"}
        cplx = {row["tiling"]: row for row in result.rows if row["data"] == "complex"}
        for tiling in real:
            assert 2.0 < cplx[tiling]["kernel_ms"] / real[tiling]["kernel_ms"] < 5.0

    def test_table6_dimension_scaling(self):
        result = experiments.table6_qr_dimensions()
        qd = {row["dimension"]: row for row in result.rows if row["limbs"] == 4}
        # cubic work, but the time factor per dimension doubling stays below 8
        assert 3.0 < qd[1024]["kernel_ms"] / qd[512]["kernel_ms"] < 8.0

    def test_figure2_has_all_combinations(self):
        result = experiments.figure2_qr_dimension_scaling()
        assert len(result.rows) == 12


class TestBackSubstitutionTables:
    def test_table7_rows_and_anomaly(self):
        result = experiments.table7_backsub_precisions()
        assert len(result.rows) == 12
        od_20480 = next(r for r in result.rows if r["limbs"] == 8 and r["dimension"] == 20480)
        # the host-oversubscribed octo double run has a pathological wall time
        assert od_20480["wall_ms"] > 20 * od_20480["kernel_ms"]

    def test_table7_times_grow_with_dimension(self):
        result = experiments.table7_backsub_precisions()
        dd = [r for r in result.rows if r["limbs"] == 2]
        assert dd[0]["kernel_ms"] < dd[1]["kernel_ms"] < dd[2]["kernel_ms"]

    def test_figure3_rows(self):
        result = experiments.figure3_backsub_scaling()
        assert len(result.rows) == 12

    def test_table8_wall_clock_tradeoff(self):
        result = experiments.table8_backsub_tilings()
        assert len(result.rows) == 3
        by_tiling = {row["tiling"]: row for row in result.rows}
        # larger tiles: more kernel time, better performance (paper Table 8)
        assert by_tiling["80x256"]["kernel_ms"] > by_tiling["320x64"]["kernel_ms"]
        assert by_tiling["80x256"]["kernel_gflops"] > by_tiling["320x64"]["kernel_gflops"]

    def test_table9_performance_grows_with_tile_size(self):
        result = experiments.table9_backsub_three_gpus()
        for device in ("RTX2080", "P100", "V100"):
            rows = [r for r in result.rows if r["device"] == device]
            rates = [r["kernel_gflops"] for r in rows]
            assert rates == sorted(rates)
        v100 = [r for r in result.rows if r["device"] == "V100"]
        p100 = [r for r in result.rows if r["device"] == "P100"]
        assert all(v["kernel_ms"] < p["kernel_ms"] for v, p in zip(v100, p100))

    def test_table9_v100_reaches_teraflop_only_at_large_dimension(self):
        result = experiments.table9_backsub_three_gpus(devices=("V100",))
        rows = {r["tile"]: r for r in result.rows}
        assert rows[32]["kernel_gflops"] < 500
        assert rows[256]["kernel_gflops"] > 1000

    def test_figure4_rows(self):
        result = experiments.figure4_backsub_three_gpus()
        assert len(result.rows) == 24

    def test_table10_intensity_grows_and_compute_bound(self):
        result = experiments.table10_roofline()
        intensities = [row["intensity"] for row in result.rows]
        assert intensities == sorted(intensities)
        assert all(row["compute_bound"] for row in result.rows)
        assert all(row["kernel_gflops"] <= row["attainable_gflops"] for row in result.rows)

    def test_figure5_log_coordinates(self):
        result = experiments.figure5_roofline()
        assert len(result.rows) == 8
        assert result.rows[0]["log10_intensity"] < result.rows[-1]["log10_intensity"]


class TestTable11AndOverhead:
    def test_table11_qr_dominates(self):
        result = experiments.table11_least_squares()
        assert len(result.rows) == 12
        for row in result.rows:
            assert row["qr_over_bs_kernel_time"] > 10
        v100_qd = next(r for r in result.rows if r["device"] == "V100" and r["limbs"] == 4)
        assert v100_qd["total_kernel_gflops"] > 1000

    def test_overhead_factors_below_prediction(self):
        result = experiments.overhead_factors()
        assert len(result.rows) == 6
        assert all(row["below_prediction"] for row in result.rows)
        for row in result.rows:
            if row["paper_observed_factor"]:
                assert row["observed_factor"] == pytest.approx(
                    row["paper_observed_factor"], rel=0.35
                )

    def test_registry_complete(self):
        expected = {
            "table1", "table2", "table3", "table4", "table5", "table6", "table7",
            "table8", "table9", "table10", "table11",
            "figure1", "figure2", "figure3", "figure4", "figure5", "overhead",
        }
        assert set(experiments.ALL_EXPERIMENTS) == expected


class TestReport:
    def test_format_table(self):
        result = experiments.table2_devices()
        text = report.format_table(result)
        assert "Volta V100" in text and "multiprocessors" in text

    def test_format_table_empty(self):
        empty = experiments.ExperimentResult("x", "empty experiment")
        assert "(no rows)" in report.format_table(empty)

    def test_format_bars(self):
        result = experiments.figure1_qr_precision_scaling(devices=("V100",))
        text = report.format_bars(result, "log2_kernel_ms", ["device", "limbs"], log2=False)
        assert "#" in text

    def test_format_experiment_dispatch(self):
        table_text = report.format_experiment(experiments.table2_devices())
        figure_text = report.format_experiment(experiments.figure5_roofline())
        assert "cores" in table_text
        assert "#" in figure_text

    def test_column_helper(self):
        result = experiments.table2_devices()
        assert len(result.column("device")) == 5
