"""Per-kernel occupancy/roofline attribution (repro.perf.attribution)."""

from __future__ import annotations

import pytest

from repro.gpu.device import get_device
from repro.gpu.kernel import KernelTrace
from repro.perf import (
    MONOMIAL_KERNELS,
    PerformanceModel,
    launch_attribution,
    monomial_kernel_attribution,
)
from repro.perf.costmodel import qr_trace
from repro.poly import cyclic, katsura


def test_launch_attribution_covers_whole_trace():
    trace = qr_trace(32, 32, 8, 2)
    rows = launch_attribution(trace)
    assert rows
    assert sum(row.launches for row in rows) == len(trace.launches)
    assert sum(row.share for row in rows) == pytest.approx(1.0)
    model = PerformanceModel("V100")
    total_ms = sum(model.kernel_time_ms(launch) for launch in trace.launches)
    assert sum(row.predicted_ms for row in rows) == pytest.approx(total_ms)


def test_launch_attribution_rows_are_consistent():
    device = get_device("V100")
    for row in launch_attribution(qr_trace(32, 32, 8, 2)):
        assert 0.0 < row.occupancy <= 1.0
        assert row.flops > 0.0
        assert row.bytes > 0.0
        assert row.intensity == pytest.approx(row.flops / row.bytes)
        assert row.compute_bound == (row.intensity >= device.ridge_point)
        assert 0.0 < row.roofline_gflops <= device.peak_double_gflops
        assert 0.0 < row.fraction_of_roof


def test_launch_attribution_kernel_filter_orders_rows():
    trace = qr_trace(32, 32, 8, 2)
    all_names = [row.kernel for row in launch_attribution(trace)]
    subset = launch_attribution(trace, kernels=tuple(reversed(all_names[:2])))
    assert [row.kernel for row in subset] == list(reversed(all_names[:2]))
    # shares stay relative to the whole trace, not the filtered rows
    assert sum(row.share for row in subset) < 1.0


def test_monomial_attribution_names_the_shared_kernels():
    rows = monomial_kernel_attribution(katsura(8), 2, jacobian=True)
    names = [row.kernel for row in rows]
    assert names == list(MONOMIAL_KERNELS)
    assert sum(row.share for row in rows) == pytest.approx(1.0)


def test_monomial_attribution_without_jacobian():
    rows = monomial_kernel_attribution(katsura(8), 2, jacobian=False)
    names = {row.kernel for row in rows}
    assert "term_reduce" in names
    assert "jacobian_scale" not in names
    assert "jacobian_reduce" not in names


def test_monomial_attribution_matches_recorded_trace():
    """The analytic trace the attribution builds is the one the numeric
    evaluator records — kernel for kernel, launch for launch."""
    system = cyclic(3)
    from repro.vec import random as mdrandom

    point = mdrandom.random_vector(system.variables, 2)
    trace = KernelTrace("V100")
    system.evaluate(point, 2, trace=trace)
    recorded = launch_attribution(trace, kernels=MONOMIAL_KERNELS)
    analytic = monomial_kernel_attribution(system, 2, jacobian=False)
    assert [(r.kernel, r.launches, r.flops, r.bytes) for r in recorded] == [
        (r.kernel, r.launches, r.flops, r.bytes) for r in analytic
    ]


def test_series_order_scales_the_work():
    base = monomial_kernel_attribution(katsura(4), 2, order=0)
    series = monomial_kernel_attribution(katsura(4), 2, order=8)
    base_flops = {row.kernel: row.flops for row in base}
    for row in series:
        assert row.flops > base_flops[row.kernel]
