"""Tests for the multiple double dense linear algebra kernels."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md import MultiDouble
from repro.vec import MDArray, MDComplexArray, linalg
from repro.vec import random as mdrandom


class TestMatvec:
    def test_matches_numpy_double(self, rng):
        a = rng.standard_normal((7, 5))
        x = rng.standard_normal(5)
        y = linalg.matvec(MDArray.from_double(a, 2), MDArray.from_double(x, 2))
        assert np.allclose(y.to_double(), a @ x, rtol=1e-14)

    def test_full_precision_against_scalar_reference(self, md_limbs, rng):
        a = mdrandom.random_matrix(6, 4, md_limbs, rng)
        x = mdrandom.random_vector(4, md_limbs, rng)
        y = linalg.matvec(a, x)
        for i in range(6):
            acc = MultiDouble(0, md_limbs)
            # pairwise order (as used by the reduction) for an exact match
            terms = [a.to_multidouble((i, j)) * x.to_multidouble(j) for j in range(4)]
            while len(terms) > 1:
                half = (len(terms) + 1) // 2
                merged = []
                for k in range(half):
                    if k + half < len(terms):
                        merged.append(terms[k] + terms[k + half])
                    else:
                        merged.append(terms[k])
                terms = merged
            acc = terms[0]
            diff = abs((y.to_multidouble(i) - acc).to_fraction())
            assert diff <= abs(acc.to_fraction()) * Fraction(1, 2 ** (50 * md_limbs))

    def test_complex(self, rng):
        a = rng.standard_normal((5, 5)) + 1j * rng.standard_normal((5, 5))
        x = rng.standard_normal(5) + 1j * rng.standard_normal(5)
        y = linalg.matvec(MDComplexArray.from_complex(a, 2), MDComplexArray.from_complex(x, 2))
        assert np.allclose(y.to_complex(), a @ x, rtol=1e-13)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            linalg.matvec(MDArray.zeros((3, 3), 2), MDArray.zeros((4,), 2))
        with pytest.raises(ValueError):
            linalg.matvec(MDArray.zeros((3,), 2), MDArray.zeros((3,), 2))


class TestMatmul:
    def test_matches_numpy_double(self, rng):
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        c = linalg.matmul(MDArray.from_double(a, 2), MDArray.from_double(b, 2))
        assert np.allclose(c.to_double(), a @ b, rtol=1e-14)

    def test_complex_matches_numpy(self, rng):
        a = rng.standard_normal((4, 3)) + 1j * rng.standard_normal((4, 3))
        b = rng.standard_normal((3, 4)) + 1j * rng.standard_normal((3, 4))
        c = linalg.matmul(MDComplexArray.from_complex(a, 2), MDComplexArray.from_complex(b, 2))
        assert np.allclose(c.to_complex(), a @ b, rtol=1e-13)

    def test_identity_is_neutral(self, md_limbs, rng):
        a = mdrandom.random_matrix(5, 5, md_limbs, rng)
        eye = linalg.identity(5, md_limbs)
        assert linalg.matmul(a, eye).allclose(a, tol=0.0) or linalg.matmul(a, eye).equals(a)

    def test_associativity_within_precision(self, rng):
        m = 4
        a = mdrandom.random_matrix(4, 4, m, rng)
        b = mdrandom.random_matrix(4, 4, m, rng)
        c = mdrandom.random_matrix(4, 4, m, rng)
        left = linalg.matmul(linalg.matmul(a, b), c)
        right = linalg.matmul(a, linalg.matmul(b, c))
        assert left.allclose(right, tol=1e-60)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            linalg.matmul(MDArray.zeros((2, 3), 2), MDArray.zeros((2, 3), 2))
        with pytest.raises(ValueError):
            linalg.matmul(MDArray.zeros((3,), 2), MDArray.zeros((3, 3), 2))


class TestVectorOps:
    def test_dot_and_outer(self, rng):
        x = rng.standard_normal(6)
        y = rng.standard_normal(6)
        xd, yd = MDArray.from_double(x, 2), MDArray.from_double(y, 2)
        assert float(linalg.dot(xd, yd).to_double()) == pytest.approx(x @ y)
        assert np.allclose(linalg.outer(xd, yd).to_double(), np.outer(x, y))

    def test_conjugated_dot(self):
        x = MDComplexArray.from_complex(np.array([1 + 1j, 2j]), 2)
        y = MDComplexArray.from_complex(np.array([1 - 1j, 3.0]), 2)
        plain = linalg.dot(x, y).to_complex()
        conj = linalg.dot(x, y, conjugate=True).to_complex()
        xv, yv = np.array([1 + 1j, 2j]), np.array([1 - 1j, 3.0])
        assert plain == pytest.approx(np.sum(xv * yv))
        assert conj == pytest.approx(np.sum(xv.conj() * yv))

    def test_dot_requires_vectors(self):
        with pytest.raises(ValueError):
            linalg.dot(MDArray.zeros((2, 2), 2), MDArray.zeros((2,), 2))
        with pytest.raises(ValueError):
            linalg.outer(MDArray.zeros((2, 2), 2), MDArray.zeros((2,), 2))

    def test_norm_real_and_complex(self):
        x = MDArray.from_double(np.array([3.0, 4.0]), 4)
        assert float(linalg.norm(x).to_double()) == pytest.approx(5.0)
        z = MDComplexArray.from_complex(np.array([3 + 4j]), 4)
        assert float(linalg.norm(z).to_double()) == pytest.approx(5.0)

    def test_frobenius_norm(self, rng):
        a = rng.standard_normal((4, 3))
        amd = MDArray.from_double(a, 2)
        assert float(linalg.frobenius_norm(amd).to_double()) == pytest.approx(
            np.linalg.norm(a)
        )
        z = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        zmd = MDComplexArray.from_complex(z, 2)
        assert float(linalg.frobenius_norm(zmd).to_double()) == pytest.approx(
            np.linalg.norm(z)
        )

    def test_residual_norm(self, rng):
        a = rng.standard_normal((5, 5))
        x = rng.standard_normal(5)
        b = a @ x
        res = linalg.residual_norm(
            MDArray.from_double(a, 2), MDArray.from_double(x, 2), MDArray.from_double(b, 2)
        )
        assert res < 1e-14

    def test_max_abs_entry(self):
        assert linalg.max_abs_entry(MDArray.from_double(np.array([-3.0, 2.0]), 2)) == 3.0
        z = MDComplexArray.from_complex(np.array([3 + 4j]), 2)
        assert linalg.max_abs_entry(z) == pytest.approx(5.0)


class TestStructuredHelpers:
    def test_identity(self):
        eye = linalg.identity(4, 2)
        assert np.array_equal(eye.to_double(), np.eye(4))
        eye_c = linalg.identity(3, 2, complex_data=True)
        assert np.array_equal(eye_c.to_complex(), np.eye(3).astype(complex))

    def test_triu_tril(self, rng):
        a = rng.standard_normal((4, 4))
        amd = MDArray.from_double(a, 2)
        assert np.array_equal(linalg.triu(amd).to_double(), np.triu(a))
        assert np.array_equal(linalg.tril(amd, -1).to_double(), np.tril(a, -1))
        z = MDComplexArray.from_complex(a + 1j * a, 2)
        assert np.array_equal(linalg.triu(z, 1).to_complex(), np.triu(a + 1j * a, 1))

    def test_conjugate_transpose_dispatch(self, rng):
        a = rng.standard_normal((3, 4))
        amd = MDArray.from_double(a, 2)
        assert np.array_equal(linalg.conjugate_transpose(amd).to_double(), a.T)
        assert np.array_equal(linalg.transpose(amd).to_double(), a.T)
        z = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        zmd = MDComplexArray.from_complex(z, 2)
        assert np.array_equal(linalg.conjugate_transpose(zmd).to_complex(), z.conj().T)


class TestRandomGenerators:
    def test_random_matrix_properties(self, md_limbs):
        a = mdrandom.random_matrix(5, 3, md_limbs, rng=1)
        assert a.shape == (5, 3) and a.limbs == md_limbs
        assert np.max(np.abs(a.to_double())) <= 1.0
        if md_limbs > 1:
            assert np.any(a.data[1] != 0.0)

    def test_random_vector_deterministic_with_seed(self):
        a = mdrandom.random_vector(4, 2, rng=42)
        b = mdrandom.random_vector(4, 2, rng=42)
        assert a.equals(b)

    def test_random_complex(self):
        z = mdrandom.random_complex_matrix(3, 3, 2, rng=0)
        assert isinstance(z, MDComplexArray)
        w = mdrandom.random_complex_vector(3, 2, rng=0)
        assert w.shape == (3,)

    def test_lu_factor_double(self, rng):
        a = rng.standard_normal((8, 8)) + 4 * np.eye(8)
        perm, l, u = mdrandom.lu_factor_double(a)
        assert np.allclose(l @ u, a[perm], atol=1e-12)
        assert np.allclose(np.tril(u, -1), 0)
        assert np.allclose(np.triu(l, 1), 0)

    def test_lu_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            mdrandom.lu_factor_double(np.zeros((2, 3)))

    def test_lu_rejects_singular(self):
        with pytest.raises(ZeroDivisionError):
            mdrandom.lu_factor_double(np.zeros((3, 3)))

    def test_well_conditioned_triangular(self):
        u = mdrandom.random_well_conditioned_upper_triangular(24, 2, rng=3)
        head = u.to_double()
        assert np.allclose(np.tril(head, -1), 0)
        assert np.all(np.abs(np.diag(head)) > 1e-8)
        # the whole point: condition number far below exponential growth
        assert np.linalg.cond(head) < 1e6

    def test_well_conditioned_triangular_complex(self):
        u = mdrandom.random_well_conditioned_upper_triangular(8, 2, rng=3, complex_data=True)
        assert isinstance(u, MDComplexArray)
        assert np.allclose(np.tril(u.to_complex(), -1), 0)

    def test_lstsq_problem_shapes(self):
        a, b = mdrandom.random_lstsq_problem(10, 6, 2, rng=0)
        assert a.shape == (10, 6) and b.shape == (10,)
        a, b = mdrandom.random_lstsq_problem(5, 5, 2, rng=0, complex_data=True)
        assert isinstance(a, MDComplexArray)

    def test_lstsq_problem_rejects_wide(self):
        with pytest.raises(ValueError):
            mdrandom.random_lstsq_problem(3, 5, 2)
