"""Tests for complex multiple double arrays."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md import ComplexMultiDouble, MultiDouble
from repro.vec import MDArray, MDComplexArray


class TestConstruction:
    def test_zeros(self):
        z = MDComplexArray.zeros((2, 3), 4)
        assert z.shape == (2, 3) and z.limbs == 4
        assert np.all(z.to_complex() == 0)

    def test_from_complex(self):
        values = np.array([1 + 2j, -3.5j, 4.0])
        z = MDComplexArray.from_complex(values, 2)
        assert np.array_equal(z.to_complex(), values)

    def test_from_parts(self):
        z = MDComplexArray.from_parts(np.array([1.0]), np.array([2.0]), 2)
        assert z.to_complex()[0] == 1 + 2j

    def test_real_imag_must_match(self):
        with pytest.raises(ValueError):
            MDComplexArray(MDArray.zeros((2,), 2), MDArray.zeros((3,), 2))
        with pytest.raises(TypeError):
            MDComplexArray(np.zeros(3))

    def test_default_imaginary_is_zero(self):
        z = MDComplexArray(MDArray.from_double(np.array([1.0, 2.0]), 2))
        assert np.array_equal(z.to_complex(), [1.0, 2.0])

    def test_nbytes_counts_both_parts(self):
        z = MDComplexArray.zeros((5,), 4)
        assert z.nbytes == 2 * 4 * 5 * 8


class TestArithmetic:
    def test_matches_numpy_complex(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        b = rng.standard_normal((3, 3)) + 1j * rng.standard_normal((3, 3))
        za = MDComplexArray.from_complex(a, 2)
        zb = MDComplexArray.from_complex(b, 2)
        assert np.allclose((za + zb).to_complex(), a + b, rtol=1e-15)
        assert np.allclose((za - zb).to_complex(), a - b, rtol=1e-15)
        assert np.allclose((za * zb).to_complex(), a * b, rtol=1e-14)
        assert np.allclose((za / zb).to_complex(), a / b, rtol=1e-14)

    def test_scalar_and_plain_operands(self):
        z = MDComplexArray.from_complex(np.array([1 + 1j]), 2)
        assert (z + 1).to_complex()[0] == 2 + 1j
        assert (2 * z).to_complex()[0] == 2 + 2j
        assert (1j * z).to_complex()[0] == pytest.approx(-1 + 1j)
        assert (1 - z).to_complex()[0] == -1j
        assert np.allclose((1 / z).to_complex()[0], 1 / (1 + 1j))

    def test_multidouble_scalar_operand(self):
        z = MDComplexArray.from_complex(np.array([2 + 0j]), 4)
        third = MultiDouble(Fraction(1, 3), 4)
        w = z * third
        assert abs(w.real.to_multidouble(0).to_fraction() - Fraction(2, 3)) < Fraction(1, 2 ** 200)

    def test_complexmultidouble_operand(self):
        z = MDComplexArray.from_complex(np.array([1 + 0j]), 2)
        w = z * ComplexMultiDouble(0.0, 1.0, precision=2)
        assert w.to_complex()[0] == 1j

    def test_negation(self):
        z = MDComplexArray.from_complex(np.array([1 + 2j]), 2)
        assert (-z).to_complex()[0] == -1 - 2j

    def test_unsupported_operand_raises(self):
        with pytest.raises(TypeError):
            MDComplexArray.zeros((1,), 2) + object()


class TestStructure:
    def test_transpose_and_hermitian(self):
        values = np.array([[1 + 1j, 2 - 1j], [0 + 3j, -1 + 0j]])
        z = MDComplexArray.from_complex(values, 2)
        assert np.array_equal(z.T.to_complex(), values.T)
        assert np.array_equal(z.H.to_complex(), values.conj().T)

    def test_conj(self):
        values = np.array([1 + 2j, -3j])
        z = MDComplexArray.from_complex(values, 2)
        assert np.array_equal(z.conj().to_complex(), values.conj())

    def test_indexing(self):
        values = np.arange(6).reshape(2, 3) * (1 + 1j)
        z = MDComplexArray.from_complex(values, 2)
        assert np.array_equal(z[1].to_complex(), values[1])
        assert np.array_equal(z[:, 1:].to_complex(), values[:, 1:])

    def test_setitem(self):
        z = MDComplexArray.zeros((3,), 2)
        z[0] = 1 + 2j
        z[1] = MDComplexArray.from_complex(np.array(3j), 2)
        assert z.to_complex()[0] == 1 + 2j
        assert z.to_complex()[1] == 3j

    def test_reshape_and_len(self):
        z = MDComplexArray.from_complex(np.arange(6) * 1j, 2)
        assert z.reshape(2, 3).shape == (2, 3)
        assert len(z) == 6

    def test_scale_pow2(self):
        z = MDComplexArray.from_complex(np.array([2 + 4j]), 2)
        assert z.scale_pow2(0.5).to_complex()[0] == 1 + 2j

    def test_copy_independent(self):
        z = MDComplexArray.from_complex(np.array([1 + 1j]), 2)
        w = z.copy()
        w[0] = 0
        assert z.to_complex()[0] == 1 + 1j


class TestReductions:
    def test_sum_and_dot(self):
        values = np.array([1 + 1j, 2 - 1j, -3 + 0.5j])
        z = MDComplexArray.from_complex(values, 4)
        assert z.sum().to_complex() == pytest.approx(values.sum())
        w = MDComplexArray.from_complex(values[::-1].copy(), 4)
        assert z.dot(w).to_complex() == pytest.approx(np.sum(values * values[::-1]))
        assert z.vdot(w).to_complex() == pytest.approx(np.sum(values.conj() * values[::-1]))

    def test_abs_and_norm(self):
        values = np.array([3 + 4j, 1 + 0j])
        z = MDComplexArray.from_complex(values, 4)
        assert np.allclose(z.abs().to_double(), [5.0, 1.0])
        assert float(z.norm2().to_double()) == pytest.approx(np.sqrt(26.0))

    def test_abs2_exact(self):
        z = MDComplexArray.from_complex(np.array([3 + 4j]), 4)
        assert z.abs2().to_multidouble(0).to_fraction() == 25

    def test_equals_allclose(self):
        z = MDComplexArray.from_complex(np.array([1 + 1j]), 2)
        assert z.equals(z.copy())
        w = z + 1e-25
        assert not z.equals(w)
        assert z.allclose(w, tol=1e-20)

    def test_to_scalar(self):
        z = MDComplexArray.from_complex(np.array([[1 + 2j]]), 4)
        s = z.to_scalar((0, 0))
        assert s.real.to_fraction() == 1 and s.imag.to_fraction() == 2
