"""Tests for the limb-major MDArray container."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import MultiDouble
from repro.vec import MDArray


def element_fraction(array: MDArray, index) -> Fraction:
    return array.to_multidouble(index).to_fraction()


class TestConstruction:
    def test_zeros(self, md_limbs):
        a = MDArray.zeros((3, 4), md_limbs)
        assert a.shape == (3, 4)
        assert a.limbs == md_limbs
        assert np.all(a.data == 0.0)

    def test_zeros_from_int_shape(self):
        assert MDArray.zeros(5, 2).shape == (5,)

    def test_from_double(self, md_limbs):
        values = np.arange(6.0).reshape(2, 3)
        a = MDArray.from_double(values, md_limbs)
        assert np.array_equal(a.to_double(), values)
        assert np.all(a.data[1:] == 0.0)

    def test_from_limbs_roundtrip(self):
        limbs = [np.array([1.0, 2.0]), np.array([1e-20, -1e-20])]
        a = MDArray.from_limbs(limbs)
        assert a.limbs == 2
        assert element_fraction(a, 0) == Fraction(1) + Fraction(1e-20)

    def test_from_multidoubles(self):
        values = [MultiDouble(Fraction(1, 3), 4), MultiDouble(Fraction(2, 7), 4)]
        a = MDArray.from_multidoubles(values)
        assert a.shape == (2,)
        assert element_fraction(a, 1) == values[1].to_fraction()

    def test_from_multidoubles_empty_raises(self):
        with pytest.raises(ValueError):
            MDArray.from_multidoubles([])

    def test_scalar_storage_rejected(self):
        with pytest.raises(ValueError):
            MDArray(np.float64(3.0))

    def test_precision_property(self):
        assert MDArray.zeros((2,), "qd").precision.name == "4d"

    def test_nbytes(self):
        a = MDArray.zeros((10, 10), 4)
        assert a.nbytes == 4 * 100 * 8


class TestIndexing:
    def test_getitem_row(self):
        a = MDArray.from_double(np.arange(12.0).reshape(3, 4), 2)
        row = a[1]
        assert row.shape == (4,)
        assert np.array_equal(row.to_double(), [4.0, 5.0, 6.0, 7.0])

    def test_getitem_slice_block(self):
        a = MDArray.from_double(np.arange(16.0).reshape(4, 4), 2)
        block = a[1:3, 2:]
        assert block.shape == (2, 2)
        assert np.array_equal(block.to_double(), [[6.0, 7.0], [10.0, 11.0]])

    def test_setitem_with_mdarray(self):
        a = MDArray.zeros((3, 3), 2)
        a[0:2, 0:2] = MDArray.from_double(np.ones((2, 2)), 2)
        assert a.to_double().sum() == 4.0

    def test_setitem_with_scalar(self):
        a = MDArray.zeros((3,), 4)
        a[1] = 2.5
        assert element_fraction(a, 1) == Fraction(5, 2)

    def test_setitem_with_multidouble(self):
        a = MDArray.zeros((3,), 4)
        third = MultiDouble(Fraction(1, 3), 4)
        a[2] = third
        assert element_fraction(a, 2) == third.to_fraction()

    def test_setitem_broadcast_scalar_region(self):
        a = MDArray.zeros((4, 4), 2)
        a[1:3, 1:3] = 7.0
        assert a.to_double().sum() == 28.0

    def test_len(self):
        assert len(MDArray.zeros((5, 2), 2)) == 5

    def test_transpose(self):
        a = MDArray.from_double(np.arange(6.0).reshape(2, 3), 2)
        assert a.T.shape == (3, 2)
        assert np.array_equal(a.T.to_double(), a.to_double().T)

    def test_transpose_requires_matrix(self):
        with pytest.raises(ValueError):
            _ = MDArray.zeros((3,), 2).T

    def test_reshape(self):
        a = MDArray.from_double(np.arange(6.0), 2)
        b = a.reshape(2, 3)
        assert b.shape == (2, 3)
        assert np.array_equal(b.to_double(), np.arange(6.0).reshape(2, 3))


class TestArithmetic:
    def test_add_matches_scalar_reference(self, md_limbs):
        rng = np.random.default_rng(11)
        a = MDArray.from_limbs(
            [rng.standard_normal(4) * 2.0 ** (-50 * k) for k in range(md_limbs)]
        )
        b = MDArray.from_limbs(
            [rng.standard_normal(4) * 2.0 ** (-50 * k) for k in range(md_limbs)]
        )
        c = a + b
        for j in range(4):
            expected = a.to_multidouble(j) + b.to_multidouble(j)
            assert c.to_multidouble(j).to_fraction() == expected.to_fraction()

    def test_mul_matches_scalar_reference(self, md_limbs):
        rng = np.random.default_rng(12)
        a = MDArray.from_limbs(
            [rng.standard_normal(3) * 2.0 ** (-50 * k) for k in range(md_limbs)]
        )
        b = MDArray.from_limbs(
            [rng.standard_normal(3) * 2.0 ** (-50 * k) for k in range(md_limbs)]
        )
        c = a * b
        for j in range(3):
            expected = a.to_multidouble(j) * b.to_multidouble(j)
            assert c.to_multidouble(j).to_fraction() == expected.to_fraction()

    def test_div_matches_scalar_reference(self):
        a = MDArray.from_double(np.array([1.0, 2.0, 5.0]), 4)
        b = MDArray.from_double(np.array([3.0, 7.0, 11.0]), 4)
        c = a / b
        for j in range(3):
            expected = a.to_multidouble(j) / b.to_multidouble(j)
            assert c.to_multidouble(j).to_fraction() == expected.to_fraction()

    def test_scalar_operands(self):
        a = MDArray.from_double(np.array([1.0, 2.0]), 2)
        assert np.array_equal((a + 1).to_double(), [2.0, 3.0])
        assert np.array_equal((2 * a).to_double(), [2.0, 4.0])
        assert np.array_equal((a - 0.5).to_double(), [0.5, 1.5])
        assert np.allclose((1 / a).to_double(), [1.0, 0.5])
        assert np.array_equal((1 - a).to_double(), [0.0, -1.0])

    def test_multidouble_scalar_operand(self):
        a = MDArray.from_double(np.array([3.0, 6.0]), 4)
        third = MultiDouble(Fraction(1, 3), 4)
        b = a * third
        assert abs(element_fraction(b, 0) - 1) < Fraction(1, 2 ** 200)

    def test_precision_mismatch_raises(self):
        with pytest.raises(ValueError):
            MDArray.zeros((2,), 2) + MDArray.zeros((2,), 4)

    def test_broadcasting_outer_product_shape(self):
        col = MDArray.from_double(np.arange(3.0).reshape(3, 1), 2)
        row = MDArray.from_double(np.arange(4.0).reshape(1, 4), 2)
        product = col * row
        assert product.shape == (3, 4)
        assert np.array_equal(product.to_double(), np.outer(np.arange(3.0), np.arange(4.0)))

    def test_negation_and_abs(self):
        a = MDArray.from_double(np.array([-1.5, 2.0]), 2)
        assert np.array_equal((-a).to_double(), [1.5, -2.0])
        assert np.array_equal(a.abs().to_double(), [1.5, 2.0])
        assert np.array_equal(abs(a).to_double(), [1.5, 2.0])

    def test_scale_pow2_exact(self):
        a = MDArray.from_limbs([np.array([1.0]), np.array([2.0 ** -70])])
        b = a.scale_pow2(0.5)
        assert element_fraction(b, 0) == (Fraction(1) + Fraction(2) ** -70) / 2

    def test_fma(self):
        a = MDArray.from_double(np.array([2.0]), 4)
        b = MDArray.from_double(np.array([3.0]), 4)
        c = MDArray.from_double(np.array([1.0]), 4)
        assert element_fraction(a.fma(b, c), 0) == 7

    def test_sqrt(self):
        a = MDArray.from_double(np.array([4.0, 2.0]), 4)
        r = a.sqrt()
        assert element_fraction(r, 0) == 2
        err = abs(r.to_multidouble(1).to_fraction() ** 2 - 2)
        assert err < Fraction(1, 2 ** 200)


class TestReductionsAndHelpers:
    def test_sum_axis(self):
        values = np.arange(12.0).reshape(3, 4)
        a = MDArray.from_double(values, 2)
        assert np.array_equal(a.sum(axis=0).to_double(), values.sum(axis=0))
        assert np.array_equal(a.sum(axis=1).to_double(), values.sum(axis=1))

    def test_sum_all(self):
        values = np.arange(10.0)
        a = MDArray.from_double(values, 4)
        assert element_fraction(a.sum(), ()) == 45

    def test_sum_odd_length(self):
        values = np.arange(7.0)
        a = MDArray.from_double(values, 2)
        assert a.sum(axis=0).to_double() == 21.0

    def test_sum_exactness_beyond_double(self):
        # 1 + 2^-80 + ... cannot be summed exactly in double precision
        limbs = [np.array([1.0, 2.0 ** -80, -1.0, 2.0 ** -81]), np.zeros(4)]
        a = MDArray.from_limbs(limbs)
        total = a.sum(axis=0).to_multidouble(()).to_fraction()
        assert total == Fraction(2) ** -80 + Fraction(2) ** -81

    def test_dot(self):
        x = MDArray.from_double(np.array([1.0, 2.0, 3.0]), 2)
        y = MDArray.from_double(np.array([4.0, 5.0, 6.0]), 2)
        assert element_fraction(x.dot(y), ()) == 32

    def test_norm2(self):
        x = MDArray.from_double(np.array([3.0, 4.0]), 4)
        assert abs(element_fraction(x.norm2(), ()) - 5) < Fraction(1, 2 ** 200)

    def test_dot_requires_vectors(self):
        with pytest.raises(ValueError):
            MDArray.zeros((2, 2), 2).dot(MDArray.zeros((2, 2), 2))

    def test_max_abs_double(self):
        a = MDArray.from_double(np.array([-7.0, 3.0]), 2)
        assert a.max_abs_double() == 7.0

    def test_astype_upcast_and_downcast(self):
        a = MDArray.from_double(np.array([1.0 / 3.0]), 2) + MDArray.from_limbs(
            [np.array([0.0]), np.array([1e-20])]
        )
        up = a.astype(4)
        assert up.limbs == 4
        assert up.to_multidouble(0).to_fraction() == a.to_multidouble(0).to_fraction()
        down = up.astype(2)
        assert down.limbs == 2

    def test_equals_and_allclose(self):
        a = MDArray.from_double(np.array([1.0, 2.0]), 2)
        b = a.copy()
        assert a.equals(b)
        c = a + MDArray.from_double(np.array([1e-25, 0.0]), 2)
        assert not a.equals(c)
        assert a.allclose(c, tol=1e-20)
        assert not a.allclose(c, tol=1e-30)

    def test_copy_is_independent(self):
        a = MDArray.from_double(np.array([1.0]), 2)
        b = a.copy()
        b[0] = 5.0
        assert a.to_double()[0] == 1.0

    def test_to_multidouble_of_matrix_element(self):
        a = MDArray.from_double(np.arange(4.0).reshape(2, 2), 2)
        assert a.to_multidouble((1, 0)).to_fraction() == 2
