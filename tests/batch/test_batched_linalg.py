"""The batched kernels are bit-identical to loops over the unbatched ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import householder_vector
from repro.vec import batched as vb
from repro.vec import linalg
from repro.vec import random as mdrandom
from repro.vec.complexmd import MDComplexArray
from repro.vec.mdarray import MDArray

BATCH = 5


def _matrices(rows, cols, limbs, rng, count=BATCH):
    return [mdrandom.random_matrix(rows, cols, limbs, rng) for _ in range(count)]


def _vectors(n, limbs, rng, count=BATCH):
    return [mdrandom.random_vector(n, limbs, rng) for _ in range(count)]


class TestStacking:
    def test_round_trip(self, rng, limbs):
        mats = _matrices(4, 3, limbs, rng)
        stacked = vb.stack(mats)
        assert stacked.shape == (BATCH, 4, 3)
        for original, back in zip(mats, vb.unstack(stacked)):
            assert np.array_equal(original.data, back.data)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            vb.stack([])
        with pytest.raises(ValueError):
            vb.stack([MDArray.zeros((2,), 2), MDArray.zeros((3,), 2)])
        with pytest.raises(ValueError):
            vb.stack([MDArray.zeros((2,), 2), MDArray.zeros((2,), 4)])

    def test_complex_stacks_both_planes(self, rng):
        mats = [
            MDComplexArray(
                MDArray.from_double(rng.standard_normal((3, 2)), 2),
                MDArray.from_double(rng.standard_normal((3, 2)), 2),
            )
            for _ in range(BATCH)
        ]
        stacked = vb.stack(mats)
        assert isinstance(stacked, MDComplexArray)
        assert stacked.shape == (BATCH, 3, 2)
        for original, back in zip(mats, vb.unstack(stacked)):
            assert original.equals(back)

    def test_mixed_kind_stack_rejected(self):
        with pytest.raises(ValueError):
            vb.stack([MDComplexArray.zeros((2,), 2), MDArray.zeros((2,), 2)])


class TestBatchedKernels:
    def test_matvec_bit_identical(self, rng, limbs):
        mats = _matrices(5, 4, limbs, rng)
        vecs = _vectors(4, limbs, rng)
        batched = vb.batched_matvec(vb.stack(mats), vb.stack(vecs))
        for i in range(BATCH):
            assert np.array_equal(
                batched.data[:, i], linalg.matvec(mats[i], vecs[i]).data
            )

    def test_matmul_bit_identical(self, rng, limbs):
        a = _matrices(4, 3, limbs, rng)
        b = _matrices(3, 5, limbs, rng)
        batched = vb.batched_matmul(vb.stack(a), vb.stack(b))
        for i in range(BATCH):
            assert np.array_equal(
                batched.data[:, i], linalg.matmul(a[i], b[i]).data
            )

    def test_dot_norm_outer_bit_identical(self, rng, limbs):
        x = _vectors(6, limbs, rng)
        y = _vectors(6, limbs, rng)
        sx, sy = vb.stack(x), vb.stack(y)
        dots = vb.batched_dot(sx, sy)
        norms = vb.batched_norm(sx)
        outers = vb.batched_outer(sx, sy)
        for i in range(BATCH):
            assert np.array_equal(dots.data[:, i], linalg.dot(x[i], y[i]).data)
            assert np.array_equal(norms.data[:, i], linalg.norm(x[i]).data)
            assert np.array_equal(outers.data[:, i], linalg.outer(x[i], y[i]).data)

    def test_transpose_and_identity(self, rng):
        mats = _matrices(3, 4, 2, rng)
        transposed = vb.batched_transpose(vb.stack(mats))
        for i in range(BATCH):
            assert np.array_equal(transposed.data[:, i], mats[i].T.data)
        eye = vb.batched_identity(3, 4, 2)
        for i in range(3):
            assert np.array_equal(eye.data[:, i], linalg.identity(4, 2).data)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            vb.batched_matvec(MDArray.zeros((2, 3, 3), 2), MDArray.zeros((2, 4), 2))
        with pytest.raises(ValueError):
            vb.batched_matmul(MDArray.zeros((2, 3, 3), 2), MDArray.zeros((2, 4, 3), 2))
        with pytest.raises(ValueError):
            vb.batched_transpose(MDArray.zeros((3, 3), 2))


class TestBatchedHouseholder:
    def test_bit_identical(self, rng, limbs):
        columns = _vectors(6, limbs, rng)
        v, beta, s = vb.batched_householder_vector(vb.stack(columns))
        for i, column in enumerate(columns):
            v_ref, beta_ref, s_ref = householder_vector(column)
            assert np.array_equal(v.data[:, i], v_ref.data)
            assert np.array_equal(beta.data[:, i], beta_ref.data)
            assert np.array_equal(s.data[:, i], s_ref.data)

    def test_zero_column_patched_without_disturbing_mates(self, rng):
        columns = _vectors(4, 2, rng, count=3)
        columns[1] = MDArray.zeros((4,), 2)
        v, beta, s = vb.batched_householder_vector(vb.stack(columns))
        for i, column in enumerate(columns):
            v_ref, beta_ref, s_ref = householder_vector(column)
            assert np.array_equal(v.data[:, i], v_ref.data), i
            assert np.array_equal(beta.data[:, i], beta_ref.data), i
            assert np.array_equal(s.data[:, i], s_ref.data), i
        # the degenerate member really is the identity reflector
        assert float(beta.data[0, 1]) == 0.0
        assert float(v.data[0, 1, 0]) == 1.0
