"""The fleet scheduler: packing policies and their invariants.

Two layers of coverage:

* :class:`~repro.batch.scheduler.FleetScheduler` alone, on dummy
  states — continuous re-packing (min-rung-first, mutations re-read
  every call), the lockstep barrier snapshot, and policy validation;
* the policies driving :func:`~repro.batch.fleet.track_paths` —
  fleets that converge in round zero, all-paths-fail fleets, a single
  survivor re-packed alone, mid-flight escalation splitting a
  sub-batch, and the ground rule that **packing never changes
  per-path results**: both policies reproduce solo ``track_path``
  bitwise, and ``lockstep`` reproduces the recorded pre-scheduler
  golden fixture limb for limb.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.batch import POLICIES, FleetScheduler, track_paths
from repro.obs import recording
from repro.poly import Homotopy, cyclic
from repro.series import track_path

from .test_fleet import (
    assert_path_matches_reference,
    coupled_jacobian,
    coupled_system,
    sqrt_jacobian,
    sqrt_system,
)

GOLDEN = Path(__file__).parent / "golden_cyclic3_lockstep.json"


class DummyState:
    def __init__(self, rung, active=True):
        self.rung = rung
        self.active = active

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"DummyState(rung={self.rung}, active={self.active})"


class TestFleetSchedulerUnit:
    def test_policies_tuple(self):
        assert POLICIES == ("lockstep", "continuous")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="bogus"):
            FleetScheduler([DummyState(0)], policy="bogus")

    def test_continuous_picks_lowest_occupied_rung(self):
        states = [DummyState(2), DummyState(0), DummyState(1), DummyState(0)]
        scheduler = FleetScheduler(states, policy="continuous")
        batch, new_round = scheduler.next_sub_batch()
        assert batch == [states[1], states[3]]
        assert new_round is True

    def test_continuous_every_sub_batch_is_a_round(self):
        states = [DummyState(0), DummyState(1)]
        scheduler = FleetScheduler(states, policy="continuous")
        _, first = scheduler.next_sub_batch()
        states[0].active = False
        _, second = scheduler.next_sub_batch()
        assert first is True and second is True

    def test_continuous_rereads_mutations_every_call(self):
        """The scheduler holds no snapshot: retirement and escalation
        between calls immediately reshape the next sub-batch."""
        states = [DummyState(0), DummyState(0), DummyState(0)]
        scheduler = FleetScheduler(states, policy="continuous")
        batch, _ = scheduler.next_sub_batch()
        assert batch == states
        states[0].active = False  # retired
        states[1].rung = 1  # escalated
        batch, _ = scheduler.next_sub_batch()
        assert batch == [states[2]]
        states[2].active = False
        batch, _ = scheduler.next_sub_batch()
        assert batch == [states[1]]

    def test_continuous_drains_to_none(self):
        state = DummyState(0)
        scheduler = FleetScheduler([state], policy="continuous")
        assert scheduler.next_sub_batch() is not None
        state.active = False
        assert scheduler.next_sub_batch() is None
        assert scheduler.next_sub_batch() is None

    def test_lockstep_round_spans_the_barrier_snapshot(self):
        """One round = one barrier snapshot, partitioned by rung in
        ladder order; only the first group opens the round."""
        states = [DummyState(1), DummyState(0), DummyState(1), DummyState(2)]
        scheduler = FleetScheduler(states, policy="lockstep")
        batch, new_round = scheduler.next_sub_batch()
        assert (batch, new_round) == ([states[1]], True)
        batch, new_round = scheduler.next_sub_batch()
        assert (batch, new_round) == ([states[0], states[2]], False)
        batch, new_round = scheduler.next_sub_batch()
        assert (batch, new_round) == ([states[3]], False)
        # the round drained: the next call snapshots a fresh barrier
        batch, new_round = scheduler.next_sub_batch()
        assert new_round is True

    def test_lockstep_snapshot_is_stale_within_the_round(self):
        """Mutations mid-round do not reshape the remaining groups —
        the historical barrier semantics the golden fixture records."""
        states = [DummyState(0), DummyState(1)]
        scheduler = FleetScheduler(states, policy="lockstep")
        scheduler.next_sub_batch()  # rung-0 group
        states[0].rung = 1  # escalates after its advance...
        batch, _ = scheduler.next_sub_batch()
        assert batch == [states[1]]  # ...but this round's rung-1 group
        # only at the next barrier do the two share a sub-batch
        batch, new_round = scheduler.next_sub_batch()
        assert new_round is True and batch == [states[0], states[1]]

    def test_lockstep_drains_to_none(self):
        states = [DummyState(0, active=False), DummyState(1, active=False)]
        assert FleetScheduler(states, policy="lockstep").next_sub_batch() is None


class TestTrackPathsPolicies:
    def test_unknown_policy_rejected_before_tracking(self):
        with pytest.raises(ValueError, match="bogus"):
            track_paths(sqrt_system, sqrt_jacobian, [[1.0]], policy="bogus")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_converged_in_round_zero(self, policy):
        """A fleet already at ``t_end`` never schedules a sub-batch."""
        fleet = track_paths(
            sqrt_system,
            sqrt_jacobian,
            [[1.0], [-1.0]],
            t_start=1.0,
            t_end=1.0,
            policy=policy,
        )
        assert fleet.rounds == 0 and fleet.sub_batches == []
        assert all(path.reached for path in fleet.paths)
        assert fleet.occupancy == 1.0
        assert fleet.policy == policy

    @pytest.mark.parametrize("policy", POLICIES)
    def test_all_paths_fail(self, policy):
        """When every path dies on a singular solve the fleet stops
        cleanly with no survivor sub-batches after the failures."""

        def singular_jacobian(x0, t0):
            return [[0.0, 0.0], [0.0, 0.0]]

        fleet = track_paths(
            coupled_system,
            singular_jacobian,
            [[1.0, 1.0], [-1.0, -1.0]],
            tol=1e-16,
            order=8,
            max_steps=8,
            policy=policy,
        )
        assert fleet.failed_count == 2 and fleet.reached_count == 0
        assert all(path.failed and "singular" in path.failure for path in fleet.paths)
        assert len(fleet.sub_batches) == 1  # the one attempt that failed

    @pytest.mark.parametrize("policy", POLICIES)
    def test_single_survivor_repacked_alone(self, policy):
        """After its batch mate dies, the survivor advances in
        width-one sub-batches and still matches solo tracking."""

        def jacobian_with_singular_origin(x0, t0):
            if abs(float(x0[0])) < 0.5:
                return [[0.0, 0.0], [0.0, 0.0]]
            return coupled_jacobian(x0, t0)

        starts = [[0.0, 0.0], [1.0, 1.0]]
        fleet = track_paths(
            coupled_system,
            jacobian_with_singular_origin,
            starts,
            tol=1e-16,
            order=8,
            max_steps=16,
            policy=policy,
        )
        assert fleet.paths[0].failed
        survivor_batches = [indices for _, _, indices in fleet.sub_batches[1:]]
        assert survivor_batches and all(
            indices == (1,) for indices in survivor_batches
        )
        reference = track_path(
            coupled_system,
            coupled_jacobian,
            starts[1],
            tol=1e-16,
            order=8,
            max_steps=16,
        )
        assert_path_matches_reference(fleet.paths[1], reference)
        assert fleet.occupancy < 1.0

    def test_od_escalation_splits_a_sub_batch_continuous(self):
        """A mid-flight od escalation pulls the escalating path out of
        its rung mates' sub-batch: continuous packing drains the dd
        rung first (min-rung-first) and the escalated path then
        advances alone through qd and od."""
        # two branches of one factored curve, 43 orders of magnitude
        # apart: the huge branch's noise floor rejects dd and qd steps
        # (noise ~ eps * |x|) while the unit branch stays clean at dd
        V = 1e43

        def split_system(x, t):
            (x1,) = x
            return [(x1 * x1 - 1 - t) * (x1 * x1 - V * V * (1 + t))]

        def split_jacobian(x0, t0):
            x = x0[0]
            return [[2 * x * (x * x - V * V * (1 + t0)) + (x * x - 1 - t0) * 2 * x]]

        kwargs = dict(tol=1e-22, order=8, max_steps=3, precision_ladder=(2, 4, 8))
        starts = [[1.0], [V]]
        fleet = track_paths(
            split_system, split_jacobian, starts, policy="continuous", **kwargs
        )
        # round 1 packs both paths at dd; the escalation splits them
        assert fleet.sub_batches[0] == (1, "2d", (0, 1))
        split = fleet.sub_batches[1:]
        assert all(indices == (0,) for _, name, indices in split if name == "2d")
        assert all(
            indices == (1,) for _, name, indices in split if name in ("4d", "8d")
        )
        assert "8d" in {name for _, name, _ in split}
        # min-rung-first: every dd sub-batch precedes the qd/od ones
        ranks = [{"2d": 0, "4d": 1, "8d": 2}[name] for _, name, _ in split]
        assert ranks == sorted(ranks)
        assert fleet.paths[1].precisions_used == ("2d", "4d", "8d")
        for start, path in zip(starts, fleet.paths):
            reference = track_path(split_system, split_jacobian, start, **kwargs)
            assert_path_matches_reference(path, reference)

    @pytest.mark.parametrize("policy", POLICIES)
    def test_both_policies_match_solo_tracking(self, policy):
        starts = [[1.0, 1.0], [-1.0, -1.0]]
        fleet = track_paths(
            coupled_system,
            coupled_jacobian,
            starts,
            tol=1e-16,
            order=8,
            max_steps=16,
            policy=policy,
        )
        for start, path in zip(starts, fleet.paths):
            reference = track_path(
                coupled_system, coupled_jacobian, start, tol=1e-16, order=8, max_steps=16
            )
            assert_path_matches_reference(path, reference)

    def test_policies_bitwise_identical_to_each_other(self):
        kwargs = dict(tol=1e-34, order=8, max_steps=6)
        starts = [[1.0, 1.0], [-1.0, -1.0]]
        lockstep = track_paths(
            coupled_system, coupled_jacobian, starts, policy="lockstep", **kwargs
        )
        continuous = track_paths(
            coupled_system, coupled_jacobian, starts, policy="continuous", **kwargs
        )
        for ref, obs in zip(lockstep.paths, continuous.paths):
            assert obs.steps == ref.steps
            assert obs.final_t == ref.final_t
            assert [v.limbs for v in obs.final_point] == [
                v.limbs for v in ref.final_point
            ]

    def test_summary_narrates_the_policy(self):
        fleet = track_paths(
            sqrt_system, sqrt_jacobian, [[1.0], [-1.0]], tol=1e-8, max_steps=8
        )
        line = fleet.summary()
        assert "continuous packing" in line
        assert "occupancy" in line

    def test_repack_events_and_occupancy_gauge(self):
        with recording() as recorder:
            fleet = track_paths(
                sqrt_system, sqrt_jacobian, [[1.0], [-1.0]], tol=1e-8, max_steps=8
            )
        repacks = [r for r in recorder.records if r.name == "repack"]
        assert len(repacks) == len(fleet.sub_batches)
        assert all(r.fields["policy"] == "continuous" for r in repacks)
        assert recorder.gauges["fleet_occupancy"] == fleet.occupancy


class TestLockstepGoldenFixture:
    """The recorded pre-scheduler lock-step run, limb for limb."""

    @pytest.fixture(scope="class")
    def golden(self):
        return json.loads(GOLDEN.read_text())

    @pytest.fixture(scope="class")
    def fleet(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7, backend="complex")
        return track_paths(
            homotopy,
            homotopy.start_solutions(),
            tol=1e-8,
            order=8,
            max_steps=3,
            precision_ladder=(2,),
            policy="lockstep",
        )

    def test_rounds_and_sub_batches(self, golden, fleet):
        assert fleet.rounds == golden["rounds"]
        recorded = [
            (round_, name, tuple(indices))
            for round_, name, indices in golden["sub_batches"]
        ]
        assert fleet.sub_batches == recorded

    def test_paths_reproduce_bitwise(self, golden, fleet):
        assert len(fleet.paths) == len(golden["paths"])
        for path, recorded in zip(fleet.paths, golden["paths"]):
            assert path.final_t == float.fromhex(recorded["final_t"])
            assert path.reached == recorded["reached"]
            assert len(path.steps) == len(recorded["steps"])
            for step, (t_hex, h_hex, precision) in zip(
                path.steps, recorded["steps"]
            ):
                assert step.t == float.fromhex(t_hex)
                assert step.step == float.fromhex(h_hex)
                assert step.precision == precision
            for value, (real_hex, imag_hex) in zip(
                path.final_point, recorded["final_point"]
            ):
                assert value.real.limbs == tuple(
                    float.fromhex(x) for x in real_hex
                )
                assert value.imag.limbs == tuple(
                    float.fromhex(x) for x in imag_hex
                )
