"""Path fleets: lock-step batched tracking with per-path adaptivity.

The edge cases the batched execution layer must get right:

* a fleet of **one** reproduces ``track_path`` bit for bit (steps,
  escalations, model accounting, final point limbs);
* every path of a **multi-path** fleet matches tracking it alone
  (batched kernels are bit-identical, so fleets change nothing);
* a path that **escalates to od mid-fleet** regroups into higher
  precision sub-batches without disturbing the ladder semantics;
* a **singular step** in one path (degenerate Jacobian) fails that
  path alone — its batch mates' results stay bit-identical.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.batch import PathFleetResult, track_paths
from repro.perf.costmodel import path_fleet_trace, path_step_trace
from repro.series import track_path
from repro.series.tracker import PathResult


def sqrt_system(x, t):
    """x(t)^2 = 1 + t (the examples' square-root homotopy)."""
    (x1,) = x
    return [x1 * x1 - 1 - t]


def sqrt_jacobian(x0, t0):
    return [[2 * x0[0]]]


def coupled_system(x, t):
    x1, x2 = x
    return [x1 * x1 - 1 - t, x1 * x2 - 1]


def coupled_jacobian(x0, t0):
    return [[2 * x0[0], 0], [x0[1], x0[0]]]


def branch_point_system(x, t):
    """x(t)^2 = 1/4 + t: ill-conditioned near the branch at t = -1/4."""
    (x1,) = x
    return [x1 * x1 - Fraction(1, 4) - t]


def branch_point_jacobian(x0, t0):
    return [[2 * x0[0]]]


def assert_path_matches_reference(path: PathResult, reference: PathResult):
    """Bitwise comparison of a fleet path against a solo-tracked one."""
    assert path.steps == reference.steps
    assert path.final_t == reference.final_t
    assert path.reached == reference.reached
    assert not path.failed
    assert path.escalations == reference.escalations
    assert path.precisions_used == reference.precisions_used
    assert path.total_model_ms == reference.total_model_ms
    assert [v.limbs for v in path.final_point] == [
        v.limbs for v in reference.final_point
    ]


class TestFleetOfOne:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(tol=1e-8, order=8, max_steps=32),
            dict(tol=1e-16, order=12, max_steps=64),
            dict(tol=1e-8, order=8, max_steps=32, initial_step=0.25, correct=False),
        ],
        ids=["double", "escalating", "uncorrected"],
    )
    def test_bitwise_identical_to_track_path(self, kwargs):
        reference = track_path(sqrt_system, sqrt_jacobian, [1.0], **kwargs)
        fleet = track_paths(sqrt_system, sqrt_jacobian, [[1.0]], **kwargs)
        assert fleet.batch == 1
        assert_path_matches_reference(fleet.paths[0], reference)

    def test_already_at_t_end(self):
        fleet = track_paths(
            sqrt_system, sqrt_jacobian, [[1.0]], t_start=1.0, t_end=1.0
        )
        path = fleet.paths[0]
        assert path.reached and path.step_count == 0
        assert fleet.rounds == 0


class TestMultiPathFleet:
    def test_each_path_matches_solo_tracking(self):
        starts = [[1.0, 1.0], [-1.0, -1.0]]
        fleet = track_paths(
            coupled_system, coupled_jacobian, starts, tol=1e-16, order=8, max_steps=16
        )
        for start, path in zip(starts, fleet.paths):
            reference = track_path(
                coupled_system,
                coupled_jacobian,
                start,
                tol=1e-16,
                order=8,
                max_steps=16,
            )
            assert_path_matches_reference(path, reference)
        # both paths advanced as one sub-batch while both were active
        assert fleet.sub_batches[0] == (1, "1d", (0, 1))

    def test_regrouping_follows_the_per_path_rungs(self):
        """Between rounds the fleet regroups by precision rung: the
        sub-batch records walk the ladder exactly as the per-path
        escalation history dictates.  (The escalation law itself keeps
        same-tolerance paths rung-synchronized — noise floors are
        eps-quantized — so composition changes come from escalation,
        finishing and failing paths, all covered in this module.)"""
        fleet = track_paths(
            branch_point_system,
            branch_point_jacobian,
            [[0.5], [-0.5]],
            tol=1e-34,
            order=8,
            max_steps=6,
        )
        for start, path in zip(([0.5], [-0.5]), fleet.paths):
            reference = track_path(
                branch_point_system,
                branch_point_jacobian,
                start,
                tol=1e-34,
                order=8,
                max_steps=6,
            )
            assert_path_matches_reference(path, reference)
        precisions = [name for _, name, _ in fleet.sub_batches]
        assert {"1d", "2d", "4d"} <= set(precisions)
        # one sub-batch per round here (both paths share the rung), and
        # the precision sequence is monotone along the ladder
        order_index = {"1d": 0, "2d": 1, "4d": 2, "8d": 3}
        ranks = [order_index[name] for name in precisions]
        assert ranks == sorted(ranks)

    def test_fleet_model_accounting(self):
        fleet = track_paths(
            coupled_system,
            coupled_jacobian,
            [[1.0, 1.0], [-1.0, -1.0]],
            tol=1e-16,
            order=8,
            max_steps=8,
        )
        assert isinstance(fleet, PathFleetResult)
        assert fleet.total_model_ms > 0.0
        assert fleet.fleet_model_ms > 0.0
        # batched execution needs strictly less predicted kernel time
        # than one-path-at-a-time execution
        assert fleet.batching_speedup > 1.0
        assert fleet.rounds == len(fleet.sub_batches)
        assert len(fleet.round_traces) == len(fleet.sub_batches)

    def test_round_trace_matches_analytic_fleet_trace(self):
        fleet = track_paths(
            coupled_system,
            coupled_jacobian,
            [[1.0, 1.0], [-1.0, -1.0]],
            tol=1e-16,
            order=8,
            max_steps=4,
        )
        _, _, indices = fleet.sub_batches[0]
        numeric = fleet.round_traces[0]
        analytic = path_fleet_trace(len(indices), 2, 8, 1)
        assert len(analytic) == len(numeric)
        for model_launch, real_launch in zip(analytic.launches, numeric.launches):
            assert model_launch.stage == real_launch.stage
            assert model_launch.blocks == real_launch.blocks
            assert model_launch.tally.as_dict() == pytest.approx(
                real_launch.tally.as_dict()
            )


class TestEscalationMidFleet:
    def test_path_escalates_to_od_mid_fleet(self):
        fleet = track_paths(
            sqrt_system, sqrt_jacobian, [[1.0], [-1.0]], tol=1e-70, order=8, max_steps=2
        )
        for start, path in zip(([1.0], [-1.0]), fleet.paths):
            reference = track_path(
                sqrt_system, sqrt_jacobian, start, tol=1e-70, order=8, max_steps=2
            )
            assert_path_matches_reference(path, reference)
            assert "8d" in path.precisions_used
            assert path.escalations >= 3
        # the regrouping walked the whole ladder
        precisions = [name for _, name, _ in fleet.sub_batches]
        assert precisions[:4] == ["1d", "2d", "4d", "8d"]


class TestSingularPathIsolation:
    @staticmethod
    def _jacobian_with_singular_origin(x0, t0):
        # the path started at the origin gets a structurally singular
        # Jacobian; the well-separated paths get the true one
        if abs(float(x0[0])) < 0.5:
            return [[0.0, 0.0], [0.0, 0.0]]
        return coupled_jacobian(x0, t0)

    def test_failure_is_contained(self):
        starts = [[1.0, 1.0], [0.0, 0.0], [-1.0, -1.0]]
        fleet = track_paths(
            coupled_system,
            self._jacobian_with_singular_origin,
            starts,
            tol=1e-16,
            order=8,
            max_steps=16,
        )
        failed = fleet.paths[1]
        assert failed.failed and not failed.reached
        assert "singular" in failed.failure
        assert failed.step_count == 0
        assert fleet.failed_count == 1
        # the healthy batch mates are bit-identical to solo tracking
        for index in (0, 2):
            reference = track_path(
                coupled_system,
                coupled_jacobian,
                starts[index],
                tol=1e-16,
                order=8,
                max_steps=16,
            )
            assert_path_matches_reference(fleet.paths[index], reference)
        # after the failure the fleet regrouped without the dead path
        later = [indices for _, _, indices in fleet.sub_batches[1:]]
        assert all(1 not in indices for indices in later)


class TestValidation:
    def test_empty_fleet(self):
        with pytest.raises(ValueError):
            track_paths(sqrt_system, sqrt_jacobian, [])

    def test_mismatched_dimensions(self):
        with pytest.raises(ValueError):
            track_paths(coupled_system, coupled_jacobian, [[1.0, 1.0], [1.0]])

    def test_bad_order_and_ladder(self):
        with pytest.raises(ValueError):
            track_paths(sqrt_system, sqrt_jacobian, [[1.0]], order=1)
        with pytest.raises(ValueError):
            track_paths(sqrt_system, sqrt_jacobian, [[1.0]], precision_ladder=())


class TestFleetCostModel:
    def test_fleet_trace_flat_in_batch(self):
        base = path_fleet_trace(1, 2, 8, 2)
        wide = path_fleet_trace(32, 2, 8, 2)
        assert len(wide) == len(base)
        assert wide.total_flops() == pytest.approx(32 * base.total_flops())

    def test_fleet_flops_match_per_path_steps(self):
        """Batching reorganizes the launches, not the work."""
        batch, dim, order, limbs = 8, 2, 8, 2
        fleet_trace = path_fleet_trace(batch, dim, order, limbs)
        step = path_step_trace(dim, order, limbs)
        assert fleet_trace.total_flops() == pytest.approx(
            batch * step.total_flops()
        )
        # the per-path Padé constructions collapse into one batched one,
        # so the fleet needs strictly fewer launches than b paths alone
        assert len(fleet_trace) < batch * len(step)
