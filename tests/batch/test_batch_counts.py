"""Batch-aware accounting: launches flat in b, work linear in b.

This is the batching contract stated by the issue, asserted on both
sides of the accounting: the series operation catalogue
(:func:`repro.md.opcounts.series_counts` with its ``batch`` parameter)
and the kernel-level cost model
(:meth:`repro.gpu.kernel.KernelTrace.batched` and the
``batched_*_trace`` builders of :mod:`repro.perf.costmodel`).
"""

from __future__ import annotations

import pytest

from repro.gpu.counters import OperationTally
from repro.gpu.kernel import KernelLaunch, KernelTrace
from repro.md.opcounts import (
    SERIES_OPERATIONS,
    series_counts,
    series_flops,
    series_launches,
)
from repro.perf.costmodel import (
    back_substitution_trace,
    batched_back_substitution_trace,
    batched_lstsq_trace,
    batched_qr_trace,
    lstsq_trace,
    qr_trace,
)

BATCHES = (1, 3, 32)


class TestSeriesCountsBatch:
    @pytest.mark.parametrize("operation", SERIES_OPERATIONS)
    def test_operations_linear_launches_flat(self, operation):
        base = series_counts(operation, 16)
        for batch in BATCHES:
            counts = series_counts(operation, 16, batch)
            assert counts.md_operations == pytest.approx(
                batch * base.md_operations
            )
            assert counts.launches == base.launches

    def test_flops_linear_in_batch(self):
        assert series_flops("mul", 24, 2, batch=8) == pytest.approx(
            8 * series_flops("mul", 24, 2)
        )

    def test_launches_independent_of_batch(self):
        assert series_launches("mul", 24, batch=32) == series_launches("mul", 24)

    def test_validation(self):
        with pytest.raises(ValueError):
            series_counts("mul", 8, 0)

    def test_batched_method_keeps_launches(self):
        counts = series_counts("reciprocal", 8)
        wide = counts.batched(16)
        assert wide.launches == counts.launches
        assert wide.md_operations == pytest.approx(16 * counts.md_operations)


class TestKernelTraceBatched:
    def _launch(self):
        return KernelLaunch(
            name="k",
            stage="s",
            blocks=3,
            threads_per_block=32,
            limbs=2,
            tally=OperationTally(multiplications=10.0, additions=6.0),
            bytes_read=100.0,
            bytes_written=40.0,
            efficiency=0.5,
        )

    def test_launch_batched(self):
        wide = self._launch().batched(8)
        assert wide.blocks == 24
        assert wide.threads_per_block == 32
        assert wide.tally.multiplications == 80.0
        assert wide.bytes_read == 800.0 and wide.bytes_written == 320.0
        assert wide.efficiency == 0.5

    def test_trace_batched(self):
        trace = KernelTrace("V100", label="t")
        trace.record(self._launch())
        trace.record(self._launch())
        wide = trace.batched(4)
        assert len(wide) == len(trace)
        assert wide.total_flops() == pytest.approx(4 * trace.total_flops())
        assert wide.total_bytes() == pytest.approx(4 * trace.total_bytes())

    def test_trace_batched_validation(self):
        with pytest.raises(ValueError):
            KernelTrace("V100").batched(0)


class TestBatchedCostModel:
    def test_qr_launches_flat_flops_linear(self):
        base = qr_trace(16, 16, 4, 2)
        for batch in BATCHES:
            model = batched_qr_trace(batch, 16, 16, 4, 2)
            assert model.kernel_launch_count == base.kernel_launch_count
            assert model.total_flops() == pytest.approx(batch * base.total_flops())
            assert model.total_bytes() == pytest.approx(batch * base.total_bytes())

    def test_back_substitution_launches_flat(self):
        base = back_substitution_trace(4, 4, 2)
        model = batched_back_substitution_trace(16, 4, 4, 2)
        assert model.kernel_launch_count == base.kernel_launch_count
        assert model.total_flops() == pytest.approx(16 * base.total_flops())

    def test_lstsq_launches_flat(self):
        qr_base, bs_base = lstsq_trace(16, 16, 4, 2)
        qr_model, bs_model = batched_lstsq_trace(8, 16, 16, 4, 2)
        assert qr_model.kernel_launch_count == qr_base.kernel_launch_count
        assert bs_model.kernel_launch_count == bs_base.kernel_launch_count
        assert qr_model.total_flops() + bs_model.total_flops() == pytest.approx(
            8 * (qr_base.total_flops() + bs_base.total_flops())
        )

    def test_stage_structure_preserved(self):
        base = qr_trace(8, 8, 4, 2)
        model = batched_qr_trace(4, 8, 8, 4, 2)
        assert model.stages() == base.stages()
