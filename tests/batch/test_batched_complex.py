"""Complex batched kernels: bit-identical per slice to the core complex
drivers.

The batching contract of :mod:`repro.batch`, lifted to complex
(separated-plane) data: every batched solver slice must equal a loop
over its unbatched :mod:`repro.core` / :mod:`repro.series` counterpart
bit for bit — the property the native complex path fleets inherit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch.back_substitution import batched_back_substitution
from repro.batch.least_squares import batched_least_squares
from repro.batch.pade import batched_pade
from repro.batch.qr import batched_blocked_qr
from repro.core.back_substitution import tiled_back_substitution
from repro.core.blocked_qr import blocked_qr
from repro.core.least_squares import lstsq
from repro.series.complexvec import ComplexTruncatedSeries
from repro.series.pade import pade
from repro.vec import batched as vb
from repro.vec import linalg
from repro.vec.complexmd import MDComplexArray
from repro.vec.mdarray import MDArray

BATCH = 4


@pytest.fixture(params=[1, 2, 4], ids=["1d", "2d", "4d"])
def climbs(request):
    """Precisions exercised by the complex batch suite (od is covered
    by the real batch suite; complex od costs ~16x per operation)."""
    return request.param


def _complex_matrices(rows, cols, limbs, rng, count=BATCH):
    return [
        MDComplexArray(
            MDArray.from_double(rng.standard_normal((rows, cols)), limbs),
            MDArray.from_double(rng.standard_normal((rows, cols)), limbs),
        )
        for _ in range(count)
    ]


def _complex_vectors(n, limbs, rng, count=BATCH):
    return [
        MDComplexArray(
            MDArray.from_double(rng.standard_normal(n), limbs),
            MDArray.from_double(rng.standard_normal(n), limbs),
        )
        for _ in range(count)
    ]


def _complex_uppers(n, limbs, rng, count=BATCH):
    uppers = []
    for _ in range(count):
        real = np.triu(rng.standard_normal((n, n)))
        imag = np.triu(rng.standard_normal((n, n)))
        np.fill_diagonal(real, real.diagonal() + 3.0)  # well conditioned
        uppers.append(
            MDComplexArray(
                MDArray.from_double(real, limbs), MDArray.from_double(imag, limbs)
            )
        )
    return uppers


class TestBatchedComplexLinalg:
    def test_matvec_bit_identical(self, rng, climbs):
        mats = _complex_matrices(4, 3, climbs, rng)
        vecs = _complex_vectors(3, climbs, rng)
        batched = vb.batched_matvec(vb.stack(mats), vb.stack(vecs))
        for i in range(BATCH):
            assert batched[i].equals(linalg.matvec(mats[i], vecs[i]))

    def test_conjugate_transpose(self, rng):
        mats = _complex_matrices(3, 3, 2, rng)
        batched = vb.batched_conjugate_transpose(vb.stack(mats))
        for i in range(BATCH):
            assert batched[i].equals(mats[i].H)

    def test_householder_bit_identical(self, rng, climbs):
        from repro.core.householder import householder_vector

        columns = _complex_vectors(5, climbs, rng)
        v, beta, s = vb.batched_householder_vector(vb.stack(columns))
        for i, column in enumerate(columns):
            v_i, beta_i, s_i = householder_vector(column)
            assert v[i].equals(v_i)
            assert np.array_equal(beta.data[:, i], beta_i.data)
            assert s[i].equals(s_i)

    def test_householder_zero_column_patched(self, rng):
        columns = _complex_vectors(4, 2, rng)
        columns[1] = MDComplexArray.zeros((4,), 2)
        v, beta, _ = vb.batched_householder_vector(vb.stack(columns))
        assert np.all(beta.data[:, 1] == 0.0)
        assert complex(v[1].to_scalar(0)) == 1.0
        # the healthy members keep their bits
        from repro.core.householder import householder_vector

        v_0, beta_0, _ = householder_vector(columns[0])
        assert v[0].equals(v_0)


class TestBatchedComplexQR:
    def test_bit_identical_to_core(self, rng, climbs):
        mats = _complex_matrices(4, 4, climbs, rng)
        batched = batched_blocked_qr(vb.stack(mats), 2)
        for i, mat in enumerate(mats):
            solo = blocked_qr(mat, 2)
            assert batched.Q[i].equals(solo.Q)
            assert batched.R[i].equals(solo.R)

    def test_factorization_reconstructs(self, rng):
        mats = _complex_matrices(6, 4, 2, rng)
        batched = batched_blocked_qr(vb.stack(mats), 2)
        assert batched.finite_systems().all()
        for i, mat in enumerate(mats):
            recon = linalg.matmul(batched.Q[i], batched.R[i])
            assert np.allclose(recon.to_complex(), mat.to_complex())


class TestBatchedComplexBackSubstitution:
    def test_bit_identical_to_core(self, rng, climbs):
        uppers = _complex_uppers(4, climbs, rng)
        rhs = _complex_vectors(4, climbs, rng)
        batched = batched_back_substitution(vb.stack(uppers), vb.stack(rhs), 2)
        assert batched.finite_systems().all()
        for i in range(BATCH):
            solo = tiled_back_substitution(uppers[i], rhs[i], 2)
            assert batched.x[i].equals(solo.x)


class TestBatchedComplexLeastSquares:
    def test_bit_identical_to_core(self, rng, climbs):
        mats = _complex_matrices(4, 4, climbs, rng)
        rhs = _complex_vectors(4, climbs, rng)
        batched = batched_least_squares(vb.stack(mats), vb.stack(rhs), tile_size=2)
        assert batched.finite_systems().all()
        for i in range(BATCH):
            solo = lstsq(mats[i], rhs[i], tile_size=2)
            assert batched.x[i].equals(solo.x)

    def test_solves_the_systems(self, rng):
        mats = _complex_matrices(4, 4, 2, rng)
        rhs = _complex_vectors(4, 2, rng)
        batched = batched_least_squares(vb.stack(mats), vb.stack(rhs), tile_size=2)
        for i in range(BATCH):
            residual = rhs[i].to_complex() - mats[i].to_complex() @ batched.x[
                i
            ].to_complex()
            # the oracle product is rounded to complex128, so the check
            # bottoms out at double precision
            assert np.max(np.abs(residual)) < 1e-12


class TestBatchedComplexPade:
    def _series(self, rng, climbs, count=BATCH, order=8):
        return [
            ComplexTruncatedSeries(
                list(
                    rng.standard_normal(order + 1)
                    + 1j * rng.standard_normal(order + 1)
                ),
                climbs,
            )
            for _ in range(count)
        ]

    def test_bit_identical_to_unbatched(self, rng, climbs):
        members = self._series(rng, climbs)
        batched = batched_pade(members, 3, 3)
        for member, ours in zip(members, batched):
            solo = pade(member, 3, 3)
            assert ours.numerator_array.equals(solo.numerator_array)
            assert ours.denominator_array.equals(solo.denominator_array)
            assert ours.defect == solo.defect

    def test_coefficient_stack_input(self, rng):
        members = self._series(rng, 2)
        stack = MDComplexArray(
            MDArray(
                np.stack([s.coefficients.real.data for s in members], axis=1)
            ),
            MDArray(
                np.stack([s.coefficients.imag.data for s in members], axis=1)
            ),
        )
        from_stack = batched_pade(stack, 3, 3)
        from_list = batched_pade(members, 3, 3)
        for a, b in zip(from_stack, from_list):
            assert a.numerator_array.equals(b.numerator_array)
            assert a.denominator_array.equals(b.denominator_array)

    def test_taylor_only_batch(self, rng):
        members = self._series(rng, 2, order=4)
        batched = batched_pade(members, 4, 0)
        for member, ours in zip(members, batched):
            solo = pade(member, 4, 0)
            assert ours.denominator_array.equals(solo.denominator_array)
            assert ours.numerator_array.equals(solo.numerator_array)

    def test_mixed_kind_batch_rejected(self, rng):
        from repro.series.truncated import TruncatedSeries

        with pytest.raises(ValueError):
            batched_pade(
                [
                    self._series(rng, 2, count=1)[0],
                    TruncatedSeries(list(rng.standard_normal(9)), 2),
                ],
                3,
                3,
            )
