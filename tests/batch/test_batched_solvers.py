"""Batched QR / back substitution / least squares / Padé.

Two contracts are pinned here, at every paper precision (d/dd/qd/od):

* **bit-identity** — every batch slice equals the unbatched driver's
  result limb for limb;
* **launch-identity** — the numeric batched traces match the analytic
  batch-aware cost model launch for launch, with the launch count flat
  in the batch size.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import (
    batched_back_substitution,
    batched_blocked_qr,
    batched_least_squares,
    batched_pade,
)
from repro.core.back_substitution import tiled_back_substitution
from repro.core.blocked_qr import blocked_qr
from repro.core.least_squares import lstsq
from repro.gpu.kernel import KernelTrace
from repro.perf.costmodel import (
    batched_back_substitution_trace,
    batched_lstsq_trace,
    batched_qr_trace,
    pade_trace,
)
from repro.series import TruncatedSeries, pade
from repro.vec import batched as vb
from repro.vec import random as mdrandom
from repro.vec.mdarray import MDArray

BATCH = 4


def assert_traces_match(analytic, numeric):
    """Launch-by-launch comparison (as in tests/perf/test_costmodel.py)."""
    assert len(analytic) == len(numeric)
    for model_launch, real_launch in zip(analytic.launches, numeric.launches):
        assert model_launch.stage == real_launch.stage
        assert model_launch.name == real_launch.name
        assert model_launch.blocks == real_launch.blocks
        assert model_launch.threads_per_block == real_launch.threads_per_block
        assert model_launch.limbs == real_launch.limbs
        assert model_launch.efficiency == real_launch.efficiency
        assert model_launch.bytes_read == pytest.approx(real_launch.bytes_read)
        assert model_launch.bytes_written == pytest.approx(real_launch.bytes_written)
        assert model_launch.tally.as_dict() == pytest.approx(real_launch.tally.as_dict())


class TestBatchedQR:
    def test_bit_identical_to_loop(self, rng, limbs):
        matrices = [mdrandom.random_matrix(8, 8, limbs, rng) for _ in range(BATCH)]
        result = batched_blocked_qr(vb.stack(matrices), 4)
        for index, matrix in enumerate(matrices):
            reference = blocked_qr(matrix, 4)
            assert np.array_equal(result.Q.data[:, index], reference.Q.data)
            assert np.array_equal(result.R.data[:, index], reference.R.data)
        assert result.finite_systems().all()

    def test_rectangular(self, rng):
        matrices = [mdrandom.random_matrix(10, 6, 2, rng) for _ in range(3)]
        result = batched_blocked_qr(vb.stack(matrices), 3)
        for index, matrix in enumerate(matrices):
            reference = blocked_qr(matrix, 3)
            assert np.array_equal(result.R.data[:, index], reference.R.data)

    def test_trace_matches_batched_cost_model(self, rng):
        matrices = vb.stack(
            [mdrandom.random_matrix(8, 8, 2, rng) for _ in range(BATCH)]
        )
        numeric = batched_blocked_qr(matrices, 4).trace
        analytic = batched_qr_trace(BATCH, 8, 8, 4, 2)
        assert_traces_match(analytic, numeric)

    def test_launches_flat_in_batch(self, rng):
        single = batched_blocked_qr(
            vb.stack([mdrandom.random_matrix(8, 8, 2, rng)]), 4
        )
        many = batched_blocked_qr(
            vb.stack([mdrandom.random_matrix(8, 8, 2, rng) for _ in range(6)]), 4
        )
        assert len(many.trace) == len(single.trace)
        assert many.trace.total_flops() == pytest.approx(
            6 * single.trace.total_flops()
        )

    def test_singular_member_poisons_only_its_slice(self, rng):
        matrices = [mdrandom.random_matrix(6, 6, 2, rng) for _ in range(3)]
        matrices[1] = MDArray.zeros((6, 6), 2)
        result = batched_blocked_qr(vb.stack(matrices), 3)
        for index in (0, 2):
            reference = blocked_qr(matrices[index], 3)
            assert np.array_equal(result.Q.data[:, index], reference.Q.data)
            assert np.array_equal(result.R.data[:, index], reference.R.data)

    def test_validation(self):
        with pytest.raises(ValueError):
            batched_blocked_qr(MDArray.zeros((4, 4), 2), 2)
        with pytest.raises(ValueError):
            batched_blocked_qr(MDArray.zeros((2, 4, 6), 2), 2)
        with pytest.raises(ValueError):
            batched_blocked_qr(MDArray.zeros((2, 4, 4), 2), 3)


class TestBatchedBackSubstitution:
    def test_bit_identical_to_loop(self, rng, limbs):
        uppers = [
            mdrandom.random_well_conditioned_upper_triangular(8, limbs, rng)
            for _ in range(BATCH)
        ]
        rhs = [mdrandom.random_vector(8, limbs, rng) for _ in range(BATCH)]
        result = batched_back_substitution(vb.stack(uppers), vb.stack(rhs), 4)
        for index in range(BATCH):
            reference = tiled_back_substitution(uppers[index], rhs[index], 4)
            assert np.array_equal(result.x.data[:, index], reference.x.data)
        assert result.finite_systems().all()

    def test_trace_matches_batched_cost_model(self, rng):
        uppers = vb.stack(
            [
                mdrandom.random_well_conditioned_upper_triangular(8, 2, rng)
                for _ in range(BATCH)
            ]
        )
        rhs = vb.stack([mdrandom.random_vector(8, 2, rng) for _ in range(BATCH)])
        numeric = batched_back_substitution(uppers, rhs, 2).trace
        analytic = batched_back_substitution_trace(BATCH, 4, 2, 2)
        assert_traces_match(analytic, numeric)

    def test_singular_member_does_not_raise_or_leak(self, rng):
        uppers = [
            mdrandom.random_well_conditioned_upper_triangular(4, 2, rng)
            for _ in range(3)
        ]
        uppers[0] = MDArray.zeros((4, 4), 2)  # zero diagonal: singular
        rhs = [mdrandom.random_vector(4, 2, rng) for _ in range(3)]
        result = batched_back_substitution(vb.stack(uppers), vb.stack(rhs), 2)
        finite = result.finite_systems()
        assert not finite[0] and finite[1] and finite[2]
        for index in (1, 2):
            reference = tiled_back_substitution(uppers[index], rhs[index], 2)
            assert np.array_equal(result.x.data[:, index], reference.x.data)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            batched_back_substitution(
                MDArray.zeros((2, 4, 4), 2), MDArray.zeros((2, 3), 2), 2
            )
        with pytest.raises(ValueError):
            batched_back_substitution(
                MDArray.zeros((2, 4, 4), 2), MDArray.zeros((2, 4), 2), 3
            )


class TestBatchedLeastSquares:
    def test_bit_identical_to_loop(self, rng, limbs):
        matrices = [mdrandom.random_matrix(10, 8, limbs, rng) for _ in range(BATCH)]
        rhs = [mdrandom.random_vector(10, limbs, rng) for _ in range(BATCH)]
        result = batched_least_squares(vb.stack(matrices), vb.stack(rhs))
        for index in range(BATCH):
            reference = lstsq(matrices[index], rhs[index])
            assert np.array_equal(result.x.data[:, index], reference.x.data)
            assert result.tile_size == reference.tile_size

    def test_traces_match_batched_cost_model(self, rng):
        matrices = vb.stack(
            [mdrandom.random_matrix(10, 8, 2, rng) for _ in range(BATCH)]
        )
        rhs = vb.stack([mdrandom.random_vector(10, 2, rng) for _ in range(BATCH)])
        numeric = batched_least_squares(matrices, rhs, tile_size=4)
        qr_model, bs_model = batched_lstsq_trace(BATCH, 10, 8, 4, 2)
        assert_traces_match(qr_model, numeric.qr_trace)
        assert_traces_match(bs_model, numeric.bs_trace)
        assert numeric.combined_trace.kernel_launch_count == len(qr_model) + len(
            bs_model
        )


class TestBatchedPade:
    def _random_series(self, order, limbs, rng, count):
        out = []
        for _ in range(count):
            values = list(rng.standard_normal(order + 1))
            values[0] = abs(values[0]) + 1.0
            out.append(TruncatedSeries(values, limbs))
        return out

    def test_bit_identical_to_loop(self, rng, limbs):
        batch = self._random_series(8, limbs, rng, BATCH)
        approximants = batched_pade(batch, 3, 3)
        for series, approximant in zip(batch, approximants):
            reference = pade(series, 3, 3)
            assert np.array_equal(
                approximant.numerator_array.data, reference.numerator_array.data
            )
            assert np.array_equal(
                approximant.denominator_array.data,
                reference.denominator_array.data,
            )
            assert approximant.defect.limbs == reference.defect.limbs

    def test_trivial_denominator(self, rng):
        batch = self._random_series(4, 2, rng, 3)
        approximants = batched_pade(batch, 4, 0)
        for series, approximant in zip(batch, approximants):
            reference = pade(series, 4, 0)
            assert tuple(x.limbs for x in approximant.numerator) == tuple(
                x.limbs for x in reference.numerator
            )
            assert approximant.denominator_degree == 0

    def test_trace_matches_pade_trace_batched(self, rng):
        batch = self._random_series(8, 2, rng, BATCH)
        trace = KernelTrace("V100", label="batched pade test")
        batched_pade(batch, 3, 3, trace=trace)
        analytic = pade_trace(3, 3, 2).batched(BATCH)
        assert_traces_match(analytic, trace)

    def test_validation(self, rng):
        batch = self._random_series(4, 2, rng, 2)
        with pytest.raises(ValueError):
            batched_pade(batch, 4, 4)  # needs order >= L + M
        with pytest.raises(ValueError):
            batched_pade([])
        mixed = batch[:1] + self._random_series(6, 2, rng, 1)
        with pytest.raises(ValueError):
            batched_pade(mixed, 2, 2)
