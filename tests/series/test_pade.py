"""Padé approximants against exact rational references."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.md import get_precision
from repro.series import TruncatedSeries, pade


def log1p_over_x_coefficients(order: int) -> list:
    """Taylor coefficients of log(1+x)/x (the examples' test function)."""
    return [Fraction((-1) ** k, k + 1) for k in range(order + 1)]


def exact_hankel_denominator(coeffs, L: int, M: int) -> list:
    """Exact rational solve of the [L/M] Hankel system (reference)."""
    def c(k):
        return coeffs[k] if 0 <= k < len(coeffs) else Fraction(0)

    matrix = [[c(L + i - j) for j in range(1, M + 1)] for i in range(1, M + 1)]
    rhs = [-c(L + i) for i in range(1, M + 1)]
    for col in range(M):
        pivot = max(range(col, M), key=lambda r, c=col: abs(matrix[r][c]))
        matrix[col], matrix[pivot] = matrix[pivot], matrix[col]
        rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
        for row in range(col + 1, M):
            factor = matrix[row][col] / matrix[col][col]
            rhs[row] -= factor * rhs[col]
            for k in range(col, M):
                matrix[row][k] -= factor * matrix[col][k]
    solution = [Fraction(0)] * M
    for row in range(M - 1, -1, -1):
        acc = rhs[row] - sum(matrix[row][k] * solution[k] for k in range(row + 1, M))
        solution[row] = acc / matrix[row][row]
    return [Fraction(1)] + solution


def test_geometric_series_is_reproduced_exactly(limbs):
    """[0/1] of sum t^k is 1/(1-t): denominator (1, -1), zero defect."""
    series = TruncatedSeries([1] * 6, limbs)
    approximant = pade(series, 0, 1)
    assert [q.to_fraction() for q in approximant.denominator] == [1, -1]
    assert [p.to_fraction() for p in approximant.numerator] == [1]
    assert float(approximant.defect) == 0.0
    assert approximant.error_estimate(0.9) == 0.0


def test_exp_diagonal_approximant(limbs):
    """[1/1] of exp(t) is (1 + t/2) / (1 - t/2)."""
    factorial = [Fraction(1), Fraction(1), Fraction(1, 2), Fraction(1, 6)]
    series = TruncatedSeries.from_fractions(factorial, limbs)
    approximant = pade(series, 1, 1)
    eps = get_precision(limbs).eps
    assert abs(approximant.denominator[1].to_fraction() + Fraction(1, 2)) <= 16 * eps
    assert abs(approximant.numerator[1].to_fraction() - Fraction(1, 2)) <= 16 * eps
    assert approximant.order == 2
    # the Cauchy bound 1/(1 + 1/2) is a valid lower bound on the pole at 2
    assert approximant.pole_estimate() == pytest.approx(2.0 / 3.0, rel=1e-10)
    assert approximant.pole_estimate() <= 2.0


def test_denominator_matches_exact_hankel_solution(md_limbs):
    """Multiple double denominators track the exact rational solution."""
    m = 5
    coeffs = log1p_over_x_coefficients(2 * m + 1)
    series = TruncatedSeries.from_fractions(coeffs, md_limbs)
    approximant = pade(series, m, m)
    exact = exact_hankel_denominator(coeffs, m, m)
    eps = get_precision(md_limbs).eps
    worst = float(
        max(
            abs(q.to_fraction() - e)
            for q, e in zip(approximant.denominator, exact)
        )
    )
    # the Hankel solve loses roughly two digits per degree (~1e10 at
    # m = 5) but stays at that distance from the working precision
    assert worst <= 1e12 * eps


def test_precision_ladder_on_ill_conditioned_hankel():
    """The example's story: doubles break down, multiple doubles do not."""
    m = 8
    coeffs = log1p_over_x_coefficients(2 * m + 1)
    exact = exact_hankel_denominator(coeffs, m, m)
    worst = {}
    for limbs in (1, 2, 4, 8):
        approximant = pade(
            TruncatedSeries.from_fractions(coeffs, limbs), m, m
        )
        worst[limbs] = float(
            max(
                abs(q.to_fraction() - e)
                for q, e in zip(approximant.denominator, exact)
            )
        )
    assert worst[1] > 1e-8  # hardware doubles have lost half their digits
    assert worst[2] < 1e-12
    assert worst[4] < 1e-40
    assert worst[8] < 1e-100


def test_evaluation_matches_exact_fraction(md_limbs):
    coeffs = log1p_over_x_coefficients(9)
    approximant = pade(TruncatedSeries.from_fractions(coeffs, md_limbs), 4, 4)
    point = Fraction(1, 2)
    exact = approximant.evaluate_fraction(point)
    computed = approximant.evaluate(point).to_fraction()
    assert abs(computed - exact) <= 64 * get_precision(md_limbs).eps


def test_error_estimate_tracks_true_error(md_limbs):
    """The defect-based estimate bounds the true error within ~10x."""
    coeffs = log1p_over_x_coefficients(12)
    approximant = pade(TruncatedSeries.from_fractions(coeffs, md_limbs), 4, 4)
    point = Fraction(1, 4)
    reference = sum(Fraction((-1) ** k, k + 1) * point ** k for k in range(400))
    true_error = abs(float(approximant.evaluate_fraction(point) - reference))
    estimate = approximant.error_estimate(float(point))
    assert estimate > 0
    assert true_error <= 10 * estimate
    assert approximant.error_estimate(0.0) == 0.0


def test_degree_defaults_and_m_zero(limbs):
    series = TruncatedSeries.from_fractions(log1p_over_x_coefficients(8), limbs)
    diagonal = pade(series)
    assert diagonal.numerator_degree == 4
    assert diagonal.denominator_degree == 4
    taylor = pade(series, 5, 0)
    assert taylor.denominator_degree == 0
    assert [p.to_fraction() for p in taylor.numerator] == [
        series.coefficient(k).to_fraction() for k in range(6)
    ]
    assert taylor.trace is None


def test_plain_coefficient_list_and_precision_override():
    approximant = pade([1, 1, 1, 1], 1, 1, precision=4)
    assert approximant.precision.limbs == 4


def test_degree_validation():
    series = TruncatedSeries([1, 1, 1], 2)
    with pytest.raises(ValueError):
        pade(series, 2, 2)
    with pytest.raises(ValueError):
        pade(series, -1, 1)


def test_hankel_trace_is_recorded():
    series = TruncatedSeries.from_fractions(log1p_over_x_coefficients(9), 2)
    approximant = pade(series, 4, 4)
    assert approximant.trace is not None
    assert len(approximant.trace.launches) > 0
