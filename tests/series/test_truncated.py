"""Truncated power series arithmetic against exact rational references."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.md import MultiDouble, get_precision
from repro.series import TruncatedSeries

ORDER = 8


def binomial_series(alpha: Fraction, order: int) -> list:
    """Exact Taylor coefficients of (1+t)**alpha."""
    coefficients = [Fraction(1)]
    for k in range(1, order + 1):
        coefficients.append(coefficients[-1] * (alpha - (k - 1)) / k)
    return coefficients


def assert_matches_fractions(series, exact, limbs, scale=16):
    eps = get_precision(limbs).eps
    for computed, reference in zip(series.coefficients, exact):
        bound = scale * eps * max(abs(reference), Fraction(1))
        assert abs(computed.to_fraction() - reference) <= bound


# ---------------------------------------------------------------------------
# construction and structure
# ---------------------------------------------------------------------------

def test_constructors(limbs):
    assert TruncatedSeries.zero(3, limbs).order == 3
    one = TruncatedSeries.one(2, limbs)
    assert one.coefficient(0).to_fraction() == 1
    assert one.coefficient(1).to_fraction() == 0
    t = TruncatedSeries.variable(4, limbs)
    assert t.coefficient(1).to_fraction() == 1
    assert t.coefficient(4).to_fraction() == 0
    shifted = TruncatedSeries.variable(4, limbs, head=Fraction(1, 3))
    assert shifted.coefficient(0).to_fraction() == MultiDouble(
        Fraction(1, 3), limbs
    ).to_fraction()
    assert len(t) == 5
    assert t.limbs == get_precision(limbs).limbs


def test_coefficient_beyond_order_is_exact_zero(limbs):
    series = TruncatedSeries([1, 2, 3], limbs)
    assert series.coefficient(17).to_fraction() == 0
    assert series[2].to_fraction() == 3


def test_truncate_pad_shift(limbs):
    series = TruncatedSeries([1, 2, 3, 4], limbs)
    assert series.truncate(1).order == 1
    assert series.pad(6).order == 6
    assert series.pad(6).coefficient(6).to_fraction() == 0
    shifted = series.shift(2)
    assert shifted.order == 3
    assert shifted.coefficient(0).to_fraction() == 0
    assert shifted.coefficient(2).to_fraction() == 1
    assert shifted.coefficient(3).to_fraction() == 2


def test_astype_round_trip():
    series = TruncatedSeries([Fraction(1, 3), Fraction(2, 7)], 8)
    down = series.astype(2)
    assert down.limbs == 2
    assert down.astype(8).limbs == 8


def test_precision_mismatch_raises():
    a = TruncatedSeries([1, 2], 2)
    b = TruncatedSeries([1, 2], 4)
    with pytest.raises(ValueError):
        a + b


def test_empty_coefficients_raise():
    with pytest.raises(ValueError):
        TruncatedSeries([])


# ---------------------------------------------------------------------------
# ring arithmetic
# ---------------------------------------------------------------------------

def test_add_sub_scalars(limbs):
    series = TruncatedSeries([1, 2, 3], limbs)
    plus = series + 5
    assert plus.coefficient(0).to_fraction() == 6
    assert plus.coefficient(1).to_fraction() == 2
    minus = 5 - series
    assert minus.coefficient(0).to_fraction() == 4
    assert minus.coefficient(2).to_fraction() == -3


def test_mul_truncated_geometric(limbs):
    # (1 - t) * (1 + t + t^2 + ...) == 1 up to the truncation order
    geometric = TruncatedSeries([1] * (ORDER + 1), limbs)
    one_minus_t = TruncatedSeries([1, -1], limbs).pad(ORDER)
    product = geometric * one_minus_t
    assert product.order == ORDER
    assert product.coefficient(0).to_fraction() == 1
    for k in range(1, ORDER + 1):
        assert product.coefficient(k).to_fraction() == 0


def test_mul_matches_exact_convolution(limbs):
    a_exact = [Fraction(1, 3), Fraction(-2, 5), Fraction(7, 11)]
    b_exact = [Fraction(2), Fraction(1, 7), Fraction(-3, 13)]
    a = TruncatedSeries.from_fractions(a_exact, limbs)
    b = TruncatedSeries.from_fractions(b_exact, limbs)
    product = a * b
    convolution = [
        sum(
            (a.coefficient(i).to_fraction() * b.coefficient(k - i).to_fraction())
            for i in range(k + 1)
        )
        for k in range(3)
    ]
    assert_matches_fractions(product, convolution, limbs)


def test_integer_power(limbs):
    base = TruncatedSeries.variable(4, limbs, head=1)  # 1 + t
    cube = base ** 3
    assert [c.to_fraction() for c in cube.coefficients] == [1, 3, 3, 1, 0]
    assert (base ** 0).coefficient(0).to_fraction() == 1


def test_scale_and_negate(limbs):
    series = TruncatedSeries([1, -2, 3], limbs)
    scaled = series.scale(Fraction(1, 2))
    assert scaled.coefficient(1).to_fraction() == -1
    assert (-series).coefficient(2).to_fraction() == -3


# ---------------------------------------------------------------------------
# Newton iterations, at all four paper precisions
# ---------------------------------------------------------------------------

def test_reciprocal_alternating(limbs):
    # 1 / (1 + t) = sum (-1)^k t^k, exactly representable at any precision
    series = TruncatedSeries.variable(ORDER, limbs, head=1)
    inverse = series.reciprocal()
    for k in range(ORDER + 1):
        assert inverse.coefficient(k).to_fraction() == (-1) ** k


def test_reciprocal_zero_head_raises(limbs):
    with pytest.raises(ZeroDivisionError):
        TruncatedSeries.variable(3, limbs).reciprocal()


def test_division_round_trip(limbs):
    series = TruncatedSeries.from_fractions(
        [Fraction(2), Fraction(1, 3), Fraction(-1, 5), Fraction(1, 7)], limbs
    )
    quotient = series / series
    expected = [Fraction(1), Fraction(0), Fraction(0), Fraction(0)]
    assert_matches_fractions(quotient, expected, limbs, scale=64)


def test_sqrt_binomial_coefficients(limbs):
    root = TruncatedSeries.variable(ORDER, limbs, head=1).sqrt()
    assert_matches_fractions(root, binomial_series(Fraction(1, 2), ORDER), limbs)


def test_sqrt_negative_head_raises(limbs):
    with pytest.raises(ValueError):
        TruncatedSeries([-1, 1], limbs).sqrt()


def test_exp_of_t(limbs):
    exponential = TruncatedSeries.variable(ORDER, limbs).exp()
    factorial = Fraction(1)
    expected = []
    for k in range(ORDER + 1):
        if k:
            factorial *= k
        expected.append(Fraction(1, factorial))
    assert_matches_fractions(exponential, expected, limbs, scale=64)


def test_log_of_one_plus_t(limbs):
    logarithm = TruncatedSeries.variable(ORDER, limbs, head=1).log()
    expected = [Fraction(0)] + [
        Fraction((-1) ** (k + 1), k) for k in range(1, ORDER + 1)
    ]
    assert_matches_fractions(logarithm, expected, limbs, scale=64)


def test_exp_log_round_trip(md_limbs):
    series = TruncatedSeries.from_fractions(
        [Fraction(1), Fraction(1, 3), Fraction(-1, 7), Fraction(2, 9)], md_limbs
    )
    assert series.log().exp().allclose(series, tol=256 * get_precision(md_limbs).eps)


# ---------------------------------------------------------------------------
# calculus and evaluation
# ---------------------------------------------------------------------------

def test_derivative_and_integral(limbs):
    series = TruncatedSeries.from_fractions(
        [Fraction(5), Fraction(1, 2), Fraction(1, 3), Fraction(1, 4)], limbs
    )
    restored = series.derivative().integral(Fraction(5))
    assert_matches_fractions(restored, series.to_fractions(), limbs)


def test_evaluate_matches_exact_horner(limbs):
    series = TruncatedSeries.from_fractions(
        [Fraction(1), Fraction(-1, 2), Fraction(1, 4)], limbs
    )
    point = Fraction(1, 8)
    eps = get_precision(limbs).eps
    exact = series.evaluate_fraction(point)
    computed = series.evaluate(point).to_fraction()
    assert abs(computed - exact) <= 16 * eps


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------

def test_radius_estimate_geometric(limbs):
    # sum (t/2)^k has convergence radius 2
    series = TruncatedSeries.from_fractions(
        [Fraction(1, 2 ** k) for k in range(12)], limbs
    )
    assert series.radius_estimate() == pytest.approx(2.0, rel=1e-9)
    polynomial = TruncatedSeries([3, 0, 0, 0], limbs)
    assert polynomial.radius_estimate() == float("inf")


def test_coefficient_condition(limbs):
    benign = TruncatedSeries([1, 1, 1], limbs)
    assert benign.coefficient_condition(0.5) == pytest.approx(1.0)
    # alternating cancellation inflates the condition number
    cancelling = TruncatedSeries([1, -1], limbs)
    assert cancelling.coefficient_condition(0.999) > 100.0


def test_coefficient_ratios_skip_zeros(limbs):
    series = TruncatedSeries([1, 0, 4], limbs)
    assert series.coefficient_ratios() == [4.0]
