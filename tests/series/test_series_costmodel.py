"""Series operation counts and the analytic-vs-numeric trace contract.

The repo-wide invariant: for every workload that both executes
numerically and appears in the analytic cost model, the two paths must
produce *identical* kernel traces (same launches, same stages, same
geometry, same tallies, same byte counts).  This file extends that
contract to the series workloads.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.md import MultiDouble, PAPER_TABLE1
from repro.md.opcounts import (
    SERIES_OPERATIONS,
    pairwise_addition_count,
    series_cost_table,
    series_counts,
    series_flops,
    series_launches,
    series_newton_orders,
)
from repro.perf.costmodel import (
    matrix_series_trace,
    newton_series_trace,
    pade_trace,
    path_step_trace,
)
from repro.perf.model import PerformanceModel
from repro.series import (
    TruncatedSeries,
    newton_series,
    pade,
    solve_matrix_series,
)
from repro.vec import MDArray


def assert_traces_identical(numeric, analytic):
    assert len(numeric.launches) == len(analytic.launches)
    for ours, model in zip(numeric.launches, analytic.launches):
        assert ours.name == model.name
        assert ours.stage == model.stage
        assert ours.blocks == model.blocks
        assert ours.threads_per_block == model.threads_per_block
        assert ours.limbs == model.limbs
        assert ours.tally.as_dict() == model.tally.as_dict()
        assert ours.bytes_read == model.bytes_read
        assert ours.bytes_written == model.bytes_written


# ---------------------------------------------------------------------------
# repro.md.opcounts series entries
# ---------------------------------------------------------------------------

def test_newton_order_schedule():
    assert series_newton_orders(0) == ()
    assert series_newton_orders(1) == (1,)
    assert series_newton_orders(5) == (1, 3, 5)
    assert series_newton_orders(8) == (1, 3, 7, 8)
    assert series_newton_orders(15) == (1, 3, 7, 15)


def test_elementwise_counts_closed_forms():
    assert series_counts("add", 7).add == 8
    assert series_counts("sub", 7).sub == 8
    assert series_counts("scale", 7).mul == 8
    # the batched Cauchy product executes the full (K+1)^2 product grid
    # and one zero-padded pairwise reduction of length K+1 per output
    mul = series_counts("mul", 7)
    assert mul.mul == 8 * 8
    assert mul.add == 8 * pairwise_addition_count(8)
    assert pairwise_addition_count(8) == 4 + 2 + 1
    assert pairwise_addition_count(9) == 5 + 3 + 2 + 1


def test_launch_counts_follow_the_batched_structure():
    # elementwise operations are a single vectorized launch each
    for operation in ("add", "sub", "scale"):
        assert series_launches(operation, 7) == 1
    # the Cauchy product: one product-grid launch + log2(K+1) reduction levels
    assert series_launches("mul", 7) == 1 + 3
    assert series_launches("mul", 31) == 1 + 5
    # launches grow logarithmically while operations grow quadratically
    ops_ratio = series_counts("mul", 63).md_operations / series_counts("mul", 7).md_operations
    launch_ratio = series_launches("mul", 63) / series_launches("mul", 7)
    assert ops_ratio > 30
    assert launch_ratio < 2


def test_reciprocal_counts_follow_the_newton_schedule():
    # order 0: just the exact head division
    base = series_counts("reciprocal", 0)
    assert (base.add, base.sub, base.mul, base.div) == (0, 0, 0, 1)
    # order 1: one pass at order 1 (two muls of order 1, one 2-term sub)
    first = series_counts("reciprocal", 1)
    assert first.div == 1
    assert first.sub == 2
    assert first.mul == 2 * series_counts("mul", 1).mul
    assert first.add == 2 * series_counts("mul", 1).add


def test_div_is_reciprocal_plus_product():
    for order in (0, 3, 8):
        div = series_counts("div", order)
        manual = series_counts("reciprocal", order) + series_counts("mul", order)
        assert div.md_operations == manual.md_operations


def test_sqrt_counts_include_one_head_square_root():
    for order in (0, 4, 9):
        assert series_counts("sqrt", order).sqrt == 1


def test_counts_grow_with_order():
    for operation in SERIES_OPERATIONS:
        totals = [series_counts(operation, k).md_operations for k in (1, 4, 8, 16)]
        assert totals == sorted(totals)
        assert totals[-1] > totals[0]


def test_series_flops_use_table1_multipliers():
    counts = series_counts("mul", 5)
    table = PAPER_TABLE1[4]
    expected = (
        counts.add * table.add
        + counts.mul * table.mul
        + counts.div * table.div
    )
    assert series_flops("mul", 5, 4) == expected
    # one limb: one flop per multiple double operation
    assert series_flops("add", 5, 1) == counts.order + 1
    # measured source stays positive and larger than double
    assert series_flops("mul", 5, 2, source="measured") > series_flops("mul", 5, 1)


def test_series_cost_table_shape():
    table = series_cost_table(6)
    assert set(table) == set(SERIES_OPERATIONS)
    for row in table.values():
        assert set(row) == {"md_operations", 1, 2, 4, 8}
        assert row[8] >= row[1]


def test_unknown_operation_raises():
    with pytest.raises(ValueError):
        series_counts("conv", 3)
    with pytest.raises(ValueError):
        series_counts("mul", -1)


# ---------------------------------------------------------------------------
# analytic traces mirror the numeric drivers launch for launch
# ---------------------------------------------------------------------------

def test_matrix_series_trace_matches_numeric(md_limbs):
    rng = np.random.default_rng(20220320)
    order = 4
    a0 = MDArray.from_double(rng.standard_normal((4, 4)) + 4 * np.eye(4), md_limbs)
    a1 = MDArray.from_double(rng.standard_normal((4, 4)), md_limbs)
    rhs = [MDArray.from_double(rng.standard_normal(4), md_limbs) for _ in range(order + 1)]
    numeric = solve_matrix_series([a0, a1], rhs, tile_size=2)
    analytic = matrix_series_trace(
        4, order, md_limbs, matrix_terms=2, tile_size=2
    )
    assert_traces_identical(numeric.trace, analytic)


def test_constant_head_trace_matches_numeric_batched(md_limbs):
    """A constant head solves all orders against the batched right-hand
    sides: one Q^H B launch, then one back substitution per order."""
    rng = np.random.default_rng(20220320)
    order = 4
    a0 = MDArray.from_double(rng.standard_normal((4, 4)) + 4 * np.eye(4), md_limbs)
    batched = MDArray.from_double(rng.standard_normal((4, order + 1)), md_limbs)
    numeric = solve_matrix_series(a0, batched, tile_size=2)
    analytic = matrix_series_trace(
        4, order, md_limbs, matrix_terms=1, tile_size=2
    )
    assert_traces_identical(numeric.trace, analytic)
    names = [launch.name for launch in numeric.trace.launches]
    assert names.count("apply_qt_batched") == 1
    assert names.count("apply_qt") == 0


def test_newton_series_trace_matches_numeric():
    def system(x, t):
        x1, x2 = x
        return [x1 * x1 - 1 - t, x1 * x2 - 1]

    def jacobian(x0):
        return [[2 * x0[0], 0], [x0[1], x0[0]]]

    numeric = newton_series(system, jacobian, [1, 1], 5, 2, tile_size=1)
    analytic = newton_series_trace(2, 5, 2, tile_size=1)
    assert_traces_identical(numeric.trace, analytic)


def test_pade_trace_matches_numeric(md_limbs):
    from fractions import Fraction

    coeffs = [Fraction((-1) ** k, k + 1) for k in range(10)]
    numeric = pade(TruncatedSeries.from_fractions(coeffs, md_limbs), 4, 4)
    analytic = pade_trace(4, 4, md_limbs)
    assert_traces_identical(numeric.trace, analytic)


def test_pade_trace_empty_for_taylor_polynomial():
    assert len(pade_trace(4, 0, 2)) == 0


def test_path_step_trace_composes_newton_and_pade():
    dimension, order, limbs = 2, 8, 4
    combined = path_step_trace(dimension, order, limbs, tile_size=1)
    newton = newton_series_trace(dimension, order, limbs, tile_size=1)
    one_pade = pade_trace((order - 1) // 2, (order - 1) // 2, limbs)
    assert len(combined) == len(newton) + dimension * len(one_pade)
    assert combined.total_flops() == pytest.approx(
        newton.total_flops() + dimension * one_pade.total_flops()
    )


def test_performance_model_times_series_traces():
    model = PerformanceModel("V100")
    trace = path_step_trace(2, 8, 4, tile_size=1)
    timed = model.attribute(trace)
    assert timed.kernel_ms > 0.0
    assert timed.trace.kernel_gigaflops() > 0.0
    # octo double work costs more kernel time than double double work
    slow = model.attribute(path_step_trace(2, 8, 8, tile_size=1)).kernel_ms
    fast = model.attribute(path_step_trace(2, 8, 2, tile_size=1)).kernel_ms
    assert slow > fast
