"""Batched systems of series (VectorSeries) against per-component ops."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md import MultiDouble, get_precision
from repro.series import TruncatedSeries, VectorSeries
from repro.vec import MDArray

DIMENSION = 3
ORDER = 6


def limb_tuples(series):
    return [c.limbs for c in series]


@pytest.fixture
def components(rng, md_limbs):
    out = []
    for _ in range(DIMENSION):
        values = list(rng.standard_normal(ORDER + 1))
        values[0] = abs(values[0]) + 1.0
        out.append(TruncatedSeries(values, md_limbs))
    return out


@pytest.fixture
def batch(components):
    return VectorSeries.from_components(components)


def test_shape_and_round_trip(batch, components, md_limbs):
    assert batch.dimension == DIMENSION
    assert batch.order == ORDER
    assert batch.limbs == get_precision(md_limbs).limbs
    assert batch.coefficients.shape == (DIMENSION, ORDER + 1)
    for i, component in enumerate(components):
        assert limb_tuples(batch.component(i)) == limb_tuples(component)
    assert len(list(batch)) == DIMENSION
    assert len(batch) == DIMENSION


def test_from_components_pads_shorter_series(md_limbs):
    short = TruncatedSeries([1, 2], md_limbs)
    long = TruncatedSeries([3, 4, 5, 6], md_limbs)
    batch = VectorSeries.from_components([short, long])
    assert batch.order == 3
    assert batch.component(0).coefficient(3).to_fraction() == 0
    assert batch.component(1).coefficient(3).to_fraction() == 6


def test_construction_validation(md_limbs):
    with pytest.raises(ValueError):
        VectorSeries.from_components([])
    with pytest.raises(ValueError):
        VectorSeries.from_components(
            [TruncatedSeries([1], 2), TruncatedSeries([1], 4)]
        )
    with pytest.raises(ValueError):
        VectorSeries(MDArray.zeros(4, md_limbs))  # missing the order axis
    with pytest.raises(TypeError):
        VectorSeries([[1, 2], [3, 4]])


def test_arithmetic_matches_componentwise(batch, components):
    other = VectorSeries.from_components(list(reversed(components)))
    reversed_components = list(reversed(components))
    for result, op in (
        (batch + other, lambda a, b: a + b),
        (batch - other, lambda a, b: a - b),
        (batch * other, lambda a, b: a * b),
    ):
        for i in range(DIMENSION):
            expected = op(components[i], reversed_components[i])
            assert limb_tuples(result.component(i)) == limb_tuples(expected)
    negated = -batch
    scaled = batch.scale(Fraction(2, 3))
    for i in range(DIMENSION):
        assert limb_tuples(negated.component(i)) == limb_tuples(-components[i])
        assert limb_tuples(scaled.component(i)) == limb_tuples(
            components[i].scale(Fraction(2, 3))
        )


def test_evaluate_matches_componentwise(batch, components):
    point = Fraction(1, 8)
    values = batch.evaluate(point)
    assert values.shape == (DIMENSION,)
    for i in range(DIMENSION):
        assert values.to_multidouble(i).limbs == components[i].evaluate(point).limbs


def test_coefficient_condition_matches_componentwise(batch, components):
    point = 0.375
    conditions = batch.coefficient_condition(point)
    for i in range(DIMENSION):
        assert conditions[i] == components[i].coefficient_condition(point)


def test_coefficient_column_get_set(batch, md_limbs):
    column = batch.coefficient(2)
    assert column.shape == (DIMENSION,)
    replacement = MDArray.from_double(np.arange(1.0, DIMENSION + 1), md_limbs)
    batch.set_coefficient(2, replacement)
    assert batch.coefficient(2).equals(replacement)
    # columns beyond the order read as exact zeros and refuse writes
    assert batch.coefficient(ORDER + 5).max_abs_double() == 0.0
    with pytest.raises(IndexError):
        batch.set_coefficient(ORDER + 1, replacement)


def test_truncate_pad_astype(batch):
    truncated = batch.truncate(2)
    assert truncated.order == 2
    padded = truncated.pad(ORDER)
    assert padded.order == ORDER
    assert padded.coefficient(ORDER).max_abs_double() == 0.0
    upcast = batch.astype(8)
    assert upcast.limbs == 8
    assert upcast.truncate(ORDER) is upcast
    assert batch.allclose(upcast.astype(batch.limbs))


def test_copy_is_independent(batch):
    duplicate = batch.copy()
    duplicate.set_coefficient(0, batch.coefficient(0) + batch.coefficient(0))
    assert not duplicate.equals(batch)


def test_coerce_validation(batch, md_limbs):
    with pytest.raises(TypeError):
        batch + [1, 2, 3]
    other = VectorSeries.zeros(DIMENSION + 1, ORDER, md_limbs)
    with pytest.raises(ValueError):
        batch + other
