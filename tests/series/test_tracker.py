"""Adaptive-precision path tracking."""

from __future__ import annotations

import math

import pytest

from repro.series import track_path


def sqrt_system(x, t):
    """x(t)^2 = 1 + t: the square-root homotopy of the examples."""
    (x1,) = x
    return [x1 * x1 - 1 - t]


def sqrt_jacobian(x0, t0):
    return [[2 * x0[0]]]


def branch_point_system(x, t):
    """x(t)^2 = 1/4 + t: an ill-conditioned path.

    The branch point at t = -1/4 sits close to the tracked interval, so
    the series coefficients grow geometrically and the Padé defect keeps
    the steps short; demanding more accuracy than a precision can
    represent makes the tracker escalate.
    """
    (x1,) = x
    from fractions import Fraction

    return [x1 * x1 - Fraction(1, 4) - t]


def branch_point_jacobian(x0, t0):
    return [[2 * x0[0]]]


def test_loose_tolerance_stays_in_hardware_double():
    result = track_path(
        sqrt_system, sqrt_jacobian, [1.0], tol=1e-8, order=8, max_steps=32
    )
    assert result.reached
    assert result.precisions_used == ("1d",)
    assert result.escalations == 0
    assert abs(float(result.final_point[0]) - math.sqrt(2.0)) <= 1e-8
    assert result.step_count >= 2
    assert result.total_model_ms > 0.0
    for step in result.steps:
        assert step.limbs == 1
        assert step.precision == "1d"
        assert step.model_ms > 0.0


def test_moderate_tolerance_finishes_in_double_double():
    result = track_path(
        sqrt_system,
        sqrt_jacobian,
        [1.0],
        tol=1e-16,
        order=12,
        max_steps=64,
    )
    assert result.reached
    assert result.precisions_used[0] == "1d"
    assert "2d" in result.precisions_used
    assert result.escalations >= 1
    x = result.final_point[0].to_fraction()
    assert abs(float(x * x - 2)) <= 1e-12
    # once escalated, the ladder is monotone
    limb_sequence = [step.limbs for step in result.steps]
    assert limb_sequence == sorted(limb_sequence)


def test_ill_conditioned_path_escalates_precision():
    """The acceptance scenario: the tracker escalates d -> dd -> qd when
    the error estimate degrades past what the precision can deliver."""
    result = track_path(
        branch_point_system,
        branch_point_jacobian,
        [0.5],
        tol=1e-34,
        order=8,
        max_steps=6,
    )
    assert result.precisions_used[:3] == ("1d", "2d", "4d")
    assert result.escalations >= 2
    # every accepted step honours the noise half of the error budget
    for step in result.steps:
        assert step.precision_noise <= 0.5 * 1e-34
        assert step.limbs >= 4


def test_octo_double_rung_is_reachable():
    result = track_path(
        sqrt_system,
        sqrt_jacobian,
        [1.0],
        tol=1e-70,
        order=8,
        max_steps=2,
    )
    assert "8d" in result.precisions_used
    assert result.steps[0].limbs == 8
    assert result.escalations >= 3


def test_exhausted_ladder_proceeds_at_top_rung():
    result = track_path(
        sqrt_system,
        sqrt_jacobian,
        [1.0],
        tol=1e-20,
        order=8,
        precision_ladder=(1,),
        max_steps=3,
    )
    assert result.precisions_used == ("1d",)
    assert result.escalations == 0
    assert not result.reached


def test_step_budget_is_respected():
    result = track_path(
        sqrt_system, sqrt_jacobian, [1.0], tol=1e-20, order=8, max_steps=4
    )
    assert result.step_count <= 4
    assert not result.reached
    assert result.final_t < 1.0


def test_parameter_validation():
    with pytest.raises(ValueError):
        track_path(sqrt_system, sqrt_jacobian, [1.0], precision_ladder=())
    with pytest.raises(ValueError):
        track_path(sqrt_system, sqrt_jacobian, [1.0], order=1)
    with pytest.raises(ValueError):
        track_path(
            sqrt_system,
            sqrt_jacobian,
            [1.0],
            order=8,
            numerator_degree=4,
            denominator_degree=4,
        )


def test_partial_interval_and_uncorrected_prediction():
    result = track_path(
        sqrt_system,
        sqrt_jacobian,
        [1.0],
        t_end=0.5,
        tol=1e-6,
        order=8,
        max_steps=16,
        correct=False,
    )
    assert result.reached
    assert abs(float(result.final_point[0]) - math.sqrt(1.5)) <= 1e-5
