"""Newton's method on power series versus exact rational coefficients.

The acceptance contract of the subsystem: the series solution of

    x1(t)^2       = 1 + t
    x1(t) * x2(t) = 1

has the exact coefficients binomial(1/2, k) and binomial(-1/2, k); the
computed coefficients must match them to the working precision at
hardware double, double double, quad double and octo double.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.md import get_precision
from repro.series import (
    TruncatedSeries,
    newton_series,
    newton_series_quadratic,
)

ORDER = 10


def binomial_series(alpha: Fraction, order: int) -> list:
    coefficients = [Fraction(1)]
    for k in range(1, order + 1):
        coefficients.append(coefficients[-1] * (alpha - (k - 1)) / k)
    return coefficients


def sqrt_system(x, t):
    x1, x2 = x
    return [x1 * x1 - 1 - t, x1 * x2 - 1]


def sqrt_jacobian(x0):
    x1, x2 = x0
    return [[2 * x1, 0], [x2, x1]]


def sqrt_jacobian_series(x, t):
    x1, x2 = x
    zero = TruncatedSeries.zero(x1.order, x1.precision)
    return [[x1 * 2, zero], [x2, x1]]


def test_series_coefficients_match_exact_fractions(limbs):
    """d / dd / qd / od: max relative coefficient error ~ working eps."""
    result = newton_series(sqrt_system, sqrt_jacobian, [1, 1], ORDER, limbs, tile_size=1)
    eps = get_precision(limbs).eps
    for component, alpha in ((0, Fraction(1, 2)), (1, Fraction(-1, 2))):
        exact = binomial_series(alpha, ORDER)
        errors = [
            abs((c.to_fraction() - e) / e)
            for c, e in zip(result.series[component].coefficients, exact)
        ]
        assert max(errors) <= 256 * eps
    assert result.head_residual == 0.0
    assert result.order == ORDER
    assert result.dimension == 2


def test_precision_ladder_improves_accuracy():
    """Doubling the precision squares the coefficient accuracy."""
    exact = binomial_series(Fraction(1, 2), ORDER)
    worst = {}
    for limbs in (1, 2, 4, 8):
        result = newton_series(
            sqrt_system, sqrt_jacobian, [1, 1], ORDER, limbs, tile_size=1
        )
        worst[limbs] = float(
            max(
                abs((c.to_fraction() - e) / e)
                for c, e in zip(result.series[0].coefficients, exact)
            )
        )
    assert worst[2] < worst[1] * 1e-10
    assert worst[4] < worst[2] * 1e-10
    assert worst[8] < worst[4] * 1e-10


def test_quadratic_newton_matches_staircase(md_limbs):
    staircase = newton_series(
        sqrt_system, sqrt_jacobian, [1, 1], ORDER, md_limbs, tile_size=1
    )
    quadratic = newton_series_quadratic(
        sqrt_system, sqrt_jacobian_series, [1, 1], ORDER, md_limbs, tile_size=1
    )
    tol = 256 * get_precision(md_limbs).eps
    for i in range(2):
        assert quadratic.series[i].allclose(staircase.series[i], tol=tol)


def test_trace_records_one_solve_per_order():
    result = newton_series(sqrt_system, sqrt_jacobian, [1, 1], 6, 2, tile_size=1)
    stages = [launch.stage for launch in result.trace.launches]
    assert stages.count("Q^H * b") == 6


def test_evaluate_and_coefficients_helpers():
    result = newton_series(sqrt_system, sqrt_jacobian, [1, 1], 6, 4, tile_size=1)
    values = result.evaluate(Fraction(1, 4))
    product = values[0].to_fraction() * values[1].to_fraction()
    assert product == pytest.approx(1.0, abs=1e-4)  # truncation error only
    heads = result.coefficients(0)
    assert [h.to_fraction() for h in heads] == [1, 1]


def test_nonzero_head_residual_is_reported():
    result = newton_series(
        sqrt_system, sqrt_jacobian, [1.5, 1], 2, 2, tile_size=1
    )
    assert result.head_residual > 1.0


def test_jacobian_shape_validation():
    with pytest.raises(ValueError):
        newton_series(sqrt_system, lambda x0: [[1, 0, 0], [0, 1, 0]], [1, 1], 2, 2)


def test_residual_length_validation():
    with pytest.raises(ValueError):
        newton_series(
            lambda x, t: [x[0]], sqrt_jacobian, [1, 1], 2, 2, tile_size=1
        )
