"""Linearized block Toeplitz series solves."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md import MultiDouble, get_precision
from repro.series import TruncatedSeries, series_from_vectors, solve_matrix_series
from repro.vec import MDArray, linalg

ORDER = 5


def _matrix(entries, limbs):
    flat = [MultiDouble(e, limbs) for row in entries for e in row]
    n = len(entries)
    return MDArray.from_multidoubles(flat, limbs).reshape(n, n)


def _vector(entries, limbs):
    return MDArray.from_multidoubles([MultiDouble(e, limbs) for e in entries], limbs)


def test_constant_matrix_known_solution(md_limbs):
    """A_0 x(t) = b(t) with exactly representable data solves exactly."""
    limbs = md_limbs
    a0 = _matrix([[2, 0], [1, 1]], limbs)
    # choose the solution x_k = (2^-k, -2^-k) and build b = A_0 x exactly
    solution = [
        [Fraction(1, 2 ** k), -Fraction(1, 2 ** k)] for k in range(ORDER + 1)
    ]
    rhs = [
        _vector([2 * x1, x1 + x2], limbs)
        for x1, x2 in solution
    ]
    result = solve_matrix_series(a0, rhs, tile_size=1)
    assert result.order == ORDER
    assert result.dimension == 2
    eps = get_precision(limbs).eps
    for k, (x1, x2) in enumerate(solution):
        assert abs(result.coefficients[k].to_multidouble(0).to_fraction() - x1) <= 16 * eps
        assert abs(result.coefficients[k].to_multidouble(1).to_fraction() - x2) <= 16 * eps


def test_toeplitz_coupling_residual(md_limbs):
    """A(t) with two terms: the computed series satisfies the system."""
    limbs = md_limbs
    rng = np.random.default_rng(20220320)
    a0 = MDArray.from_double(rng.standard_normal((3, 3)) + 4 * np.eye(3), limbs)
    a1 = MDArray.from_double(rng.standard_normal((3, 3)), limbs)
    rhs = [MDArray.from_double(rng.standard_normal(3), limbs) for _ in range(ORDER + 1)]
    result = solve_matrix_series([a0, a1], rhs, tile_size=1)
    eps = get_precision(limbs).eps
    for k in range(ORDER + 1):
        recomposed = linalg.matvec(a0, result.coefficients[k])
        if k >= 1:
            recomposed = recomposed + linalg.matvec(a1, result.coefficients[k - 1])
        assert (recomposed - rhs[k]).abs().max_abs_double() <= 1e4 * eps


def test_series_view(md_limbs):
    a0 = _matrix([[1, 0], [0, 1]], md_limbs)
    rhs = [_vector([k + 1, -(k + 1)], md_limbs) for k in range(3)]
    result = solve_matrix_series(a0, rhs, tile_size=1)
    components = result.series()
    assert len(components) == 2
    assert isinstance(components[0], TruncatedSeries)
    assert components[0].coefficient(2).to_fraction() == 3
    assert result.component(1).coefficient(0).to_fraction() == -1


def test_series_from_vectors_round_trip():
    vectors = [_vector([1, 2], 2), _vector([3, 4], 2)]
    series = series_from_vectors(vectors)
    assert series[0].to_fractions() == [1, 3]
    assert series[1].to_fractions() == [2, 4]
    with pytest.raises(ValueError):
        series_from_vectors([])


def test_input_validation():
    a0 = _matrix([[1, 0], [0, 1]], 2)
    rect = MDArray.zeros((3, 2), 2)
    with pytest.raises(ValueError):
        solve_matrix_series(rect, [_vector([1, 2, 3], 2)])
    with pytest.raises(ValueError):
        solve_matrix_series(a0, [])
    with pytest.raises(ValueError):
        solve_matrix_series(a0, [_vector([1, 2, 3], 2)])
    with pytest.raises(ValueError):
        solve_matrix_series([a0, MDArray.zeros((3, 3), 2)], [_vector([1, 2], 2)])
    with pytest.raises(ValueError):
        solve_matrix_series([], [_vector([1, 2], 2)])
