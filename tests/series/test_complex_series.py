"""Native complex series stack: arithmetic, Newton staircase, Padé.

The complex twin of the series subsystem on separated real/imaginary
limb-major planes — plus the bugfix slate this PR foregrounds: the
limb-aware ``pole_radius`` nonzero test and the configurable
``pole_safety`` step-cap fraction.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.constants import get_precision
from repro.md.number import ComplexMultiDouble, MultiDouble
from repro.md.opcounts import (
    complex_series_counts,
    polynomial_counts,
    series_counts,
    series_flops,
    series_launches,
)
from repro.perf.costmodel import newton_series_trace, path_step_trace
from repro.series.complexvec import (
    ComplexTruncatedSeries,
    ComplexVectorSeries,
    coerce_scalar,
    evaluation_magnitudes,
    leading_value,
)
from repro.series.newton import newton_series
from repro.series.pade import PadeApproximant, pade
from repro.series.tracker import _resolve_pole_safety, track_path
from repro.series.truncated import TruncatedSeries
from repro.vec.complexmd import MDComplexArray
from repro.vec.mdarray import MDArray


def _random_complex_series(rng, order, limbs):
    values = rng.standard_normal(order + 1) + 1j * rng.standard_normal(order + 1)
    return ComplexTruncatedSeries(list(values), limbs)


class TestComplexTruncatedSeries:
    def test_ring_arithmetic_matches_numpy(self, rng, limbs):
        a = _random_complex_series(rng, 6, limbs)
        b = _random_complex_series(rng, 6, limbs)
        za = np.array([complex(c) for c in a])
        zb = np.array([complex(c) for c in b])
        assert np.allclose((a + b).coefficients.to_complex(), za + zb)
        assert np.allclose((a - b).coefficients.to_complex(), za - zb)
        assert np.allclose(
            (a * b).coefficients.to_complex(), np.convolve(za, zb)[:7]
        )

    def test_scale_and_evaluate(self, rng):
        a = _random_complex_series(rng, 5, 2)
        za = a.coefficients.to_complex()
        factor = 0.3 - 0.8j
        assert np.allclose((a.scale(factor)).coefficients.to_complex(), za * factor)
        value = a.evaluate(0.25)
        assert isinstance(value, ComplexMultiDouble)
        assert complex(value) == pytest.approx(np.polyval(za[::-1], 0.25))

    def test_real_series_coerces_into_complex(self, rng):
        a = _random_complex_series(rng, 4, 2)
        r = TruncatedSeries(list(rng.standard_normal(5)), 2)
        total = a + r
        assert np.allclose(
            total.coefficients.to_complex(),
            a.coefficients.to_complex() + r.coefficients.to_double(),
        )

    def test_real_left_operands_dispatch_to_complex(self, rng):
        """t * x with the real series on the left must reach the
        complex reflected operators (TruncatedSeries returns
        NotImplemented for foreign operands instead of raising)."""
        a = _random_complex_series(rng, 4, 2)
        r = TruncatedSeries(list(rng.standard_normal(5)), 2)
        za = a.coefficients.to_complex()
        zr = r.coefficients.to_double()[:5]
        product = r * a
        assert isinstance(product, ComplexTruncatedSeries)
        assert np.allclose(
            product.coefficients.to_complex(), np.convolve(zr, za)[:5]
        )
        assert np.allclose((r + a).coefficients.to_complex(), zr + za)
        assert np.allclose((r - a).coefficients.to_complex(), zr - za)
        with pytest.raises(TypeError):
            r * object()

    def test_structural_helpers(self, rng):
        a = _random_complex_series(rng, 5, 2)
        assert a.pad(8).order == 8
        assert a.truncate(3).order == 3
        assert a.astype(4).limbs == 4
        assert a.real_series().coefficients.equals(a.coefficients.real)
        assert a.coefficient(99) == ComplexMultiDouble(0)

    def test_variable_and_constant(self):
        t = ComplexTruncatedSeries.variable(3, 2, head=0.5 + 0.25j)
        assert complex(t.coefficient(0)) == 0.5 + 0.25j
        assert complex(t.coefficient(1)) == 1.0
        one = ComplexTruncatedSeries.one(2, 2)
        assert complex(one.coefficient(0)) == 1.0


class TestComplexVectorSeries:
    def test_roundtrip_and_evaluate(self, rng):
        components = [_random_complex_series(rng, 4, 2) for _ in range(3)]
        vector = ComplexVectorSeries.from_components(components)
        assert vector.dimension == 3 and vector.order == 4
        for original, back in zip(components, vector.components()):
            assert original.coefficients.equals(back.coefficients)
        point = 0.3
        values = vector.evaluate(point)
        expected = [complex(c.evaluate(point)) for c in components]
        assert np.allclose(values.to_complex(), expected)

    def test_coefficient_condition_on_moduli(self, rng):
        components = [_random_complex_series(rng, 4, 2) for _ in range(2)]
        vector = ComplexVectorSeries.from_components(components)
        conditions = vector.coefficient_condition(0.4)
        heads = np.hypot(
            vector.coefficients.real.data[0], vector.coefficients.imag.data[0]
        )
        values = evaluation_magnitudes(vector.evaluate(0.4))
        powers = 0.4 ** np.arange(5)
        expected = (heads * powers).sum(axis=1) / values
        assert conditions == pytest.approx(expected)

    def test_set_coefficient_column(self, rng):
        vector = ComplexVectorSeries.zeros(2, 3, 2)
        column = MDComplexArray.from_complex(np.array([1 + 2j, 3 - 4j]), 2)
        vector.set_coefficient(1, column)
        assert np.allclose(vector.coefficient(1).to_complex(), [1 + 2j, 3 - 4j])


class TestKindHelpers:
    def test_coerce_scalar(self):
        prec = get_precision(4)
        value = coerce_scalar(1.5 - 2j, prec)
        assert isinstance(value, ComplexMultiDouble)
        assert value.precision.limbs == 4
        real = coerce_scalar(1.5, prec)
        assert isinstance(real, MultiDouble)

    def test_leading_value(self):
        assert leading_value(MultiDouble(1.5, 2)) == 1.5
        assert leading_value(ComplexMultiDouble(1.0, 2.0)) == 1 + 2j

    def test_as_complex_convenience(self):
        z = ComplexMultiDouble(0.5, -0.25)
        assert z.as_complex() == 0.5 - 0.25j


class TestComplexNewtonSeries:
    """F(x, t) = x^2 + 1 + t around the root x0 = i: the series solution
    is sqrt(-(1 + t)) continued from i, so x(t)^2 + 1 + t = 0 exactly."""

    @staticmethod
    def _system(x, t):
        (x1,) = x
        return [x1 * x1 + 1 + t]

    @staticmethod
    def _jacobian(x0):
        return [[2 * x0[0]]]

    def test_series_solves_the_system(self, md_limbs):
        result = newton_series(self._system, self._jacobian, [1j], 6, md_limbs)
        (series,) = result.series
        assert isinstance(series, ComplexTruncatedSeries)
        t = TruncatedSeries.variable(6, md_limbs)
        residual = (series * series + 1 + t).coefficients.to_complex()
        eps = get_precision(md_limbs).eps
        assert np.max(np.abs(residual)) < 64 * eps

    def test_vector_is_complex(self):
        result = newton_series(self._system, self._jacobian, [1j], 4, 2)
        assert isinstance(result.vector, ComplexVectorSeries)
        assert result.head_residual == 0.0

    def test_reference_backend_rejected_for_complex(self):
        with pytest.raises(ValueError):
            newton_series(
                self._system, self._jacobian, [1j], 4, 2, backend="reference"
            )


class TestComplexPade:
    def test_three_pole_rational_function(self, md_limbs):
        # f(t) = sum_i 1/(1 - z_i t): a genuinely degree-3 denominator,
        # so the [3/3] Hankel system is nonsingular and the approximant
        # reconstructs the function with its closest pole at 1/max|z_i|
        zs = (0.5 + 1.5j, -0.9 + 0.3j, 0.2 - 0.6j)
        coefficients = [sum(z**k for z in zs) for k in range(8)]
        approximant = pade(
            ComplexTruncatedSeries(coefficients, md_limbs), 3, 3
        )
        expected_radius = 1.0 / max(abs(z) for z in zs)
        assert approximant.pole_radius() == pytest.approx(expected_radius, rel=1e-8)
        value = approximant.evaluate(0.1)
        exact = sum(1.0 / (1.0 - z * 0.1) for z in zs)
        assert complex(value) == pytest.approx(exact, rel=1e-9)

    def test_defect_and_error_estimate_are_real_magnitudes(self, rng):
        series = _random_complex_series(rng, 8, 2)
        approximant = pade(series, 3, 3)
        estimate = approximant.error_estimate(0.1)
        assert isinstance(estimate, float)
        assert estimate >= 0.0

    def test_matches_realified_block_structure(self, rng):
        """A complex [L/M] approximant evaluated at a real point equals
        the complex combination of its own planes — sanity against the
        numpy oracle."""
        values = rng.standard_normal(9) + 1j * rng.standard_normal(9)
        approximant = pade(ComplexTruncatedSeries(list(values), 2), 4, 4)
        t = 0.05
        numerator = np.polyval(
            [complex(c) for c in approximant.numerator][::-1], t
        )
        denominator = np.polyval(
            [complex(c) for c in approximant.denominator][::-1], t
        )
        assert complex(approximant.evaluate(t)) == pytest.approx(
            numerator / denominator, rel=1e-10
        )


class TestPoleRadiusLimbAware:
    """The bugfix: a denominator coefficient whose head underflows to
    0.0 while lower limbs stay nonzero must not drop its root from the
    step-control estimate."""

    @staticmethod
    def _approximant(denominator_data) -> PadeApproximant:
        array = MDArray(np.asarray(denominator_data, dtype=float))
        return PadeApproximant(
            numerator=(MultiDouble(1, 2),),
            denominator=tuple(array),
            precision=get_precision(2),
            defect=MultiDouble(1, 2),
            numerator_array=MDArray.from_double(np.ones(1), 2),
            denominator_array=array,
        )

    def test_underflowed_head_keeps_its_root(self):
        # q(t) = 1 + c t^2 with c stored as (0.0, 0.25): leading limb
        # underflowed, limb sum 0.25 -> poles at +-2i, radius 2
        approximant = self._approximant([[1.0, 0.0, 0.0], [0.0, 0.0, 0.25]])
        assert approximant.pole_radius() == pytest.approx(2.0)

    def test_plain_heads_unchanged(self):
        # q(t) = 1 - 2t: root at 0.5 (the pre-fix behaviour preserved)
        approximant = self._approximant([[1.0, -2.0, 0.0], [0.0, 0.0, 0.0]])
        assert approximant.pole_radius() == pytest.approx(0.5)

    def test_constant_denominator_is_infinite(self):
        approximant = self._approximant([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        assert approximant.pole_radius() == float("inf")

    def test_complex_denominator(self):
        real = MDArray(np.array([[1.0, 0.0], [0.0, 0.0]]))
        imag = MDArray(np.array([[0.0, 2.0], [0.0, 0.0]]))
        array = MDComplexArray(real, imag)
        approximant = PadeApproximant(
            numerator=(ComplexMultiDouble(1, 0),),
            denominator=tuple(array),
            precision=get_precision(2),
            defect=ComplexMultiDouble(1, 0),
            numerator_array=MDComplexArray(MDArray.from_double(np.ones(1), 2)),
            denominator_array=array,
        )
        # q(t) = 1 + 2i t: root at i/2, radius 0.5
        assert approximant.pole_radius() == pytest.approx(0.5)


class TestPoleSafety:
    """The bugfix: the step cap applies a configurable safety fraction
    beta to the pole radius (beta = 0.5 by default), so a step never
    lands essentially on the nearest Padé pole."""

    def test_validation(self):
        assert _resolve_pole_safety(None) == 0.5
        assert _resolve_pole_safety(0.25) == 0.25
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                _resolve_pole_safety(bad)

    @staticmethod
    def _track(pole_safety):
        # x^2 - 1 - t from x0 = 1: x(t) = sqrt(1 + t), a branch point at
        # t = -1 so the Padé pole radius is ~1; the loose tolerance
        # keeps the truncation control from binding before the pole cap
        def system(x, t):
            (x1,) = x
            return [x1 * x1 - 1 - t]

        def jacobian(x0, t0=None):
            return [[2 * x0[0]]]

        return track_path(
            system,
            jacobian,
            [1.0],
            order=6,
            tol=1e-2,
            max_steps=64,
            precision_ladder=(2,),
            pole_safety=pole_safety,
        )

    def test_smaller_beta_takes_smaller_first_step(self):
        generous = self._track(0.5)
        cautious = self._track(0.05)
        assert generous.reached and cautious.reached
        assert cautious.steps[0].step < generous.steps[0].step
        assert cautious.step_count >= generous.step_count
        # the cap binds: the cautious first step is beta * pole_radius
        ratio = cautious.steps[0].step / generous.steps[0].step
        assert ratio == pytest.approx(0.1, rel=0.5)

    def test_rejected_fraction_raises_in_tracker(self):
        with pytest.raises(ValueError):
            self._track(0.0)


class TestComplexOpcounts:
    def test_complex_mul_is_four_real_grids(self):
        real = series_counts("mul", 7)
        cplx = complex_series_counts("mul", 7)
        assert cplx.mul == 4 * real.mul
        assert cplx.add == 4 * real.add + 8  # plane combination adds
        assert cplx.sub == 8
        # one channel-stacked grid + tree, then the one-launch combine
        assert cplx.launches == real.launches + 1

    def test_elementwise_complex_counts(self):
        # both planes advance in one stacked launch
        add = complex_series_counts("add", 7)
        assert add.add == 16 and add.launches == 1
        sub = complex_series_counts("sub", 7)
        assert sub.sub == 16 and sub.launches == 1
        scale = complex_series_counts("scale", 7)
        assert scale.mul == 32 and scale.add == 8 and scale.sub == 8
        assert scale.launches == 2  # grid multiply + plane combine

    def test_flops_and_launches_dispatch(self):
        assert series_flops("mul", 7, 2, complex_data=True) > 3.9 * series_flops(
            "mul", 7, 2
        )
        assert series_launches("mul", 7, complex_data=True) == series_launches(
            "mul", 7
        ) + 1

    def test_batched_complex_counts_scale_ops_not_launches(self):
        single = complex_series_counts("mul", 7)
        batched = complex_series_counts("mul", 7, batch=16)
        assert batched.mul == 16 * single.mul
        assert batched.launches == single.launches

    def test_unknown_complex_operation_raises(self):
        with pytest.raises(ValueError):
            complex_series_counts("exp", 7)

    def test_polynomial_counts_complex_multiplies(self):
        shape = dict(
            monomials=6, products=8, max_degree=2, term_slots=3, jacobian_slots=2
        )
        real = polynomial_counts(3, 3, order=4, **shape)
        cplx = polynomial_counts(3, 3, order=4, complex_data=True, **shape)
        assert cplx.evaluation.mul == pytest.approx(4 * real.evaluation.mul)
        assert cplx.evaluation.md_operations > real.evaluation.md_operations
        assert cplx.combined.flops(2) > 3.5 * real.combined.flops(2)


class TestComplexTraceIdentity:
    """The launch-identity contract extended to the complex staircase:
    the numeric complex Newton expansion and the analytic
    ``complex_data=True`` model produce identical kernel traces."""

    @staticmethod
    def _system(x, t):
        (x1,) = x
        return [x1 * x1 + 1 + t]

    @staticmethod
    def _jacobian(x0):
        return [[2 * x0[0]]]

    def test_newton_series_trace_matches_numeric(self):
        numeric = newton_series(self._system, self._jacobian, [1j], 5, 2, tile_size=1)
        analytic = newton_series_trace(1, 5, 2, tile_size=1, complex_data=True)
        assert len(numeric.trace) == len(analytic)
        for ours, model in zip(numeric.trace.launches, analytic.launches):
            assert ours.name == model.name
            assert ours.stage == model.stage
            assert ours.blocks == model.blocks
            assert ours.tally.as_dict() == model.tally.as_dict()
            assert ours.bytes_read == model.bytes_read
            assert ours.bytes_written == model.bytes_written

    def test_complex_step_costs_more_than_real(self):
        real = path_step_trace(3, 8, 2, tile_size=1)
        cplx = path_step_trace(3, 8, 2, tile_size=1, complex_data=True)
        assert len(real) == len(cplx)  # launch-identical structure
        assert cplx.total_flops() > 3.5 * real.total_flops()

    def test_realified_qr_pays_the_dimension_doubling(self):
        """The motivating flop accounting: a 2n-dimensional real QR
        costs well over twice the native n-dimensional complex QR (the
        ~8x vs ~4x real-multiply factors of the issue), and the whole
        realified step overtakes the complex step once the QR work
        dominates the per-component Padé solves."""
        from repro.perf.costmodel import qr_trace

        for n in (3, 6, 12):
            complex_qr = qr_trace(n, n, 1, 2, complex_data=True).total_flops()
            realified_qr = qr_trace(2 * n, 2 * n, 1, 2).total_flops()
            assert realified_qr > 2.0 * complex_qr
        realified_step = path_step_trace(16, 8, 2).total_flops()
        complex_step = path_step_trace(8, 8, 2, complex_data=True).total_flops()
        assert realified_step > 1.4 * complex_step
