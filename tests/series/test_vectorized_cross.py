"""Vectorized limb-major series arithmetic vs the scalar reference.

The contract of the structure-of-arrays refactor: every series
operation computed on the limb-major :class:`TruncatedSeries` storage
must be **bit-identical** — not merely close — to the scalar
loop-per-coefficient :class:`ScalarSeries` reference, at every paper
precision.  Both paths share :mod:`repro.md.generic` and the same
product grid / pairwise reduction tree, so any bit of divergence is a
structural bug, not harmless roundoff.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md import MultiDouble, get_precision
from repro.series import ScalarSeries, TruncatedSeries, newton_series
from repro.vec import MDArray

ORDER = 12


def random_fractions(rng, count, nonzero_head=False, positive=False):
    """Random dyadic-ish rationals exercising several limbs."""
    values = []
    for index in range(count):
        numerator = int(rng.integers(1, 1000))
        denominator = int(rng.integers(1, 1000))
        value = Fraction(numerator, denominator)
        if not positive and rng.integers(0, 2):
            value = -value
        if nonzero_head and index == 0:
            value = abs(value) + 1
        values.append(value)
    return values


def limb_tuples(series):
    """The exact bit pattern of every coefficient."""
    return [c.limbs for c in series]


@pytest.fixture
def pair(rng, limbs):
    values = random_fractions(rng, ORDER + 1, nonzero_head=True)
    other = random_fractions(rng, ORDER + 1, nonzero_head=True)
    return (
        TruncatedSeries.from_fractions(values, limbs),
        ScalarSeries.from_fractions(values, limbs),
        TruncatedSeries.from_fractions(other, limbs),
        ScalarSeries.from_fractions(other, limbs),
    )


def test_construction_round_trip(pair):
    vectorized, scalar, _, _ = pair
    assert limb_tuples(vectorized) == limb_tuples(scalar)
    assert limb_tuples(scalar.to_truncated()) == limb_tuples(scalar)
    assert limb_tuples(ScalarSeries.from_truncated(vectorized)) == limb_tuples(vectorized)


def test_mdarray_round_trip(pair):
    vectorized, _, _, _ = pair
    array = vectorized.to_mdarray()
    assert isinstance(array, MDArray)
    rebuilt = TruncatedSeries.from_mdarray(array)
    assert rebuilt == vectorized
    # the array iterates as MultiDoubles, closing the loop to scalars
    assert [c.limbs for c in array] == limb_tuples(vectorized)
    # the round-tripped array is a copy, not an alias
    array.data[0, 0] += 1.0
    assert rebuilt == vectorized


def test_add_sub_bit_identical(pair):
    vectorized, scalar, other_vec, other_ref = pair
    assert limb_tuples(vectorized + other_vec) == limb_tuples(scalar + other_ref)
    assert limb_tuples(vectorized - other_vec) == limb_tuples(scalar - other_ref)
    assert limb_tuples(2 - vectorized) == limb_tuples(2 - scalar)
    assert limb_tuples(-vectorized) == limb_tuples(-scalar)


def test_cauchy_product_bit_identical(pair):
    vectorized, scalar, other_vec, other_ref = pair
    assert limb_tuples(vectorized * other_vec) == limb_tuples(scalar * other_ref)


def test_scale_and_calculus_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    factor = Fraction(-3, 7)
    assert limb_tuples(vectorized.scale(factor)) == limb_tuples(scalar.scale(factor))
    assert limb_tuples(vectorized.derivative()) == limb_tuples(scalar.derivative())
    constant = Fraction(1, 3)
    assert limb_tuples(vectorized.integral(constant)) == limb_tuples(scalar.integral(constant))


def test_reciprocal_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    assert limb_tuples(vectorized.reciprocal()) == limb_tuples(scalar.reciprocal())


def test_division_bit_identical(pair):
    vectorized, scalar, other_vec, other_ref = pair
    assert limb_tuples(vectorized / other_vec) == limb_tuples(scalar / other_ref)


def test_sqrt_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    assert limb_tuples(vectorized.sqrt()) == limb_tuples(scalar.sqrt())


def test_exp_bit_identical(rng, limbs):
    # exp doubles magnitudes fast: keep the coefficients small
    values = [Fraction(int(rng.integers(-50, 50)), 100) for _ in range(ORDER + 1)]
    vectorized = TruncatedSeries.from_fractions(values, limbs)
    scalar = ScalarSeries.from_fractions(values, limbs)
    assert limb_tuples(vectorized.exp()) == limb_tuples(scalar.exp())


def test_log_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    assert limb_tuples(vectorized.log()) == limb_tuples(scalar.log())


def test_power_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    assert limb_tuples(vectorized ** 3) == limb_tuples(scalar ** 3)


def test_evaluate_bit_identical(pair):
    vectorized, scalar, _, _ = pair
    for point in (Fraction(1, 8), Fraction(-3, 16), 0.25):
        assert vectorized.evaluate(point).limbs == scalar.evaluate(point).limbs


def test_random_double_coefficients_bit_identical(rng, limbs):
    """Plain random doubles (not rationals) through the hot loop."""
    values = list(rng.standard_normal(ORDER + 1))
    values[0] = abs(values[0]) + 1.0
    other = list(rng.standard_normal(ORDER + 1))
    vectorized = TruncatedSeries(values, limbs)
    scalar = ScalarSeries(values, limbs)
    other_vec = TruncatedSeries(other, limbs)
    other_ref = ScalarSeries(other, limbs)
    assert limb_tuples(vectorized * other_vec) == limb_tuples(scalar * other_ref)
    assert limb_tuples(vectorized.reciprocal()) == limb_tuples(scalar.reciprocal())


def sqrt_system(x, t):
    x1, x2 = x
    return [x1 * x1 - 1 - t, x1 * x2 - 1]


def sqrt_jacobian(x0):
    return [[2 * x0[0], 0], [x0[1], x0[0]]]


@pytest.mark.parametrize("order", [8, 32])
def test_newton_staircase_backends_bit_identical(md_limbs, order):
    """The acceptance contract: the vectorized Newton staircase equals
    the scalar-reference staircase coefficient for coefficient, bit for
    bit (order 32 at dd is the acceptance scenario)."""
    if order == 32 and md_limbs > 2:
        pytest.skip("order 32 is exercised at dd; qd/od covered at order 8")
    vectorized = newton_series(
        sqrt_system, sqrt_jacobian, [1, 1], order, md_limbs, tile_size=1
    )
    reference = newton_series(
        sqrt_system,
        sqrt_jacobian,
        [1, 1],
        order,
        md_limbs,
        tile_size=1,
        backend="reference",
    )
    for i in range(2):
        assert limb_tuples(vectorized.series[i]) == limb_tuples(reference.series[i])
    # the traces are identical too: the backends share the solves
    assert len(vectorized.trace) == len(reference.trace)
    assert vectorized.head_residual == reference.head_residual


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        newton_series(sqrt_system, sqrt_jacobian, [1, 1], 2, 2, backend="gpu")


def test_quadratic_newton_accepts_mixed_order_jacobian_entries(md_limbs):
    """Jacobian series entries of any truncation order are padded or
    truncated to the staircase target before the coefficient gather."""
    from repro.series import newton_series_quadratic

    def jacobian_series(x, t):
        x1, x2 = x
        # deliberately mixed orders: one entry padded far beyond the
        # staircase target, scalars, and natural-order series
        return [[x1.scale(2).pad(24), 0], [x2, x1]]

    result = newton_series_quadratic(
        sqrt_system, jacobian_series, [1, 1], 4, md_limbs, tile_size=1
    )
    assert result.order == 4
    product = result.series[0].evaluate(0.25) * result.series[1].evaluate(0.25)
    assert abs(float(product) - 1.0) < 1e-3


def test_vector_series_on_result_matches_components(md_limbs):
    result = newton_series(sqrt_system, sqrt_jacobian, [1, 1], 6, md_limbs, tile_size=1)
    assert result.vector.dimension == 2
    for i in range(2):
        assert limb_tuples(result.vector.component(i)) == limb_tuples(result.series[i])


def test_scalar_reference_eq_hash(limbs):
    a = ScalarSeries([1, 2, 3], limbs)
    b = ScalarSeries([1, 2, 3], limbs)
    assert a == b and hash(a) == hash(b)
    v = TruncatedSeries([1, 2, 3], limbs)
    w = TruncatedSeries([1, 2, 3], limbs)
    assert v == w and hash(v) == hash(w)
    assert np.array_equal(v.coefficients.data, w.coefficients.data)
