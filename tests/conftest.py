"""Shared pytest fixtures for the repro test-suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A deterministic NumPy random generator."""
    return np.random.default_rng(20220320)


@pytest.fixture(params=[1, 2, 4, 8], ids=["1d", "2d", "4d", "8d"])
def limbs(request):
    """The four paper precisions, parametrized by limb count."""
    return request.param


@pytest.fixture(params=[2, 4, 8], ids=["2d", "4d", "8d"])
def md_limbs(request):
    """The three genuine multiple double precisions of the paper."""
    return request.param
