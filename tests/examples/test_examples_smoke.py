"""Smoke tests for the example scripts.

The examples are the workloads' user-facing narratives; these tests run
their ``main()`` entry points at reduced sizes so that refactoring the
scripts onto :mod:`repro.series` (or future subsystems) stays
regression-guarded without paying for the full-size tables.
"""

from __future__ import annotations

import importlib
from fractions import Fraction

import pytest


@pytest.fixture(scope="module")
def power_series_example():
    return importlib.import_module("power_series_newton")


@pytest.fixture(scope="module")
def pade_example():
    return importlib.import_module("pade_approximation")


#: The exact table rows of ``power_series_newton.main(order=6)``.  The
#: arithmetic is deterministic IEEE double sequences (no platform- or
#: library-dependent kernels), so the "bit-identical tables" claim of
#: the rewritten examples is enforced literally: any change to these
#: digits means the series pipeline changed numerically.
POWER_SERIES_GOLDEN_ROWS = [
    "    double                   5.244e-15                 5.244e-15",
    "        dd                   2.019e-31                 2.019e-31",
    "        qd                   1.339e-64                 1.339e-64",
    "        od                  1.046e-129                1.046e-129",
]

#: The exact m = 2 block of ``pade_approximation.main(degrees=(2,))``.
PADE_GOLDEN_ROWS = [
    "   2      double                     1.776e-16               1.506e-05",
    "   2          dd                     7.765e-32               1.506e-05",
    "   2          qd                     2.583e-64               1.506e-05",
    "   2          od                    2.453e-129               1.506e-05",
]


def test_power_series_newton_table(power_series_example, capsys):
    power_series_example.main(order=6)
    out = capsys.readouterr().out
    assert "Power series solution up to order 6" in out
    for label in ("double", "dd", "qd", "od"):
        assert label in out
    # the table rows carry two scientific-notation error columns
    rows = [line for line in out.splitlines() if "e-" in line or "e+" in line]
    assert len(rows) >= 4


def test_power_series_newton_table_is_bit_identical(power_series_example, capsys):
    power_series_example.main(order=6)
    lines = capsys.readouterr().out.splitlines()
    assert lines[2:6] == POWER_SERIES_GOLDEN_ROWS


def test_pade_table_is_bit_identical(pade_example, capsys):
    pade_example.main(degrees=(2,))
    lines = capsys.readouterr().out.splitlines()
    assert lines[2:6] == PADE_GOLDEN_ROWS


def test_power_series_errors_shrink_with_precision(power_series_example):
    exact = power_series_example.exact_binomial_series(Fraction(1, 2), 6)
    worst = {}
    for limbs in (1, 2):
        x1, x2 = power_series_example.series_solve(limbs, 6)
        worst[limbs] = max(
            abs((c.to_fraction() - e) / e) for c, e in zip(x1[1:], exact[1:])
        )
        assert len(x1) == len(x2) == 7
    assert worst[2] < worst[1] or worst[1] == 0


def test_pade_approximation_table(pade_example, capsys):
    pade_example.main(degrees=(2, 3))
    out = capsys.readouterr().out
    assert "Pade approximants of log(1+x)/x" in out
    for label in ("double", "dd", "qd", "od"):
        assert label in out
    assert "ill" in out  # the closing narrative is printed


def test_pade_helpers_agree_with_exact_reference(pade_example):
    m = 3
    coeffs = pade_example.taylor_coefficients(2 * m + 1)
    exact = pade_example.exact_denominator(coeffs, m)
    approximant = pade_example.pade_approximant(coeffs, m, 8)
    worst = max(
        abs(q.to_fraction() - e)
        for q, e in zip(approximant.denominator, exact)
    )
    assert float(worst) < 1e-100


def test_quickstart_runs(capsys):
    quickstart = importlib.import_module("quickstart")
    quickstart.solve_and_report(16, 8)
    out = capsys.readouterr().out
    assert "Least squares problem: 16 equations, 8 unknowns" in out


def test_path_fleet_quickstart(capsys):
    path_fleet = importlib.import_module("path_fleet")
    path_fleet.main(tol=1e-8, batch=4)
    out = capsys.readouterr().out
    assert "Fleet of 2 paths" in out
    assert "Lock-step rounds" in out
    assert "bit-identical" in out
    assert "Fleet summary: 2/2 paths reached t = 1" in out
    assert "Path 0 summary: reached t = 1" in out
    # both branches of the homotopy reach t = 1 at this tolerance
    assert out.count("True") == 2


def test_homotopy_quickstart(capsys):
    """The total-degree fleet quickstart at its smallest family size.

    Golden assertion on the solution count: cyclic-2 has exactly two
    complex roots, and the fleet must find both (every path reaching
    t = 1, two distinct endpoint clusters).
    """
    quickstart = importlib.import_module("homotopy_quickstart")
    quickstart.main("cyclic", 2, max_steps=48)
    out = capsys.readouterr().out
    assert "total degree 2" in out
    assert "Reached t = 1: 2/2 paths" in out
    assert "Distinct solutions found: 2" in out
    assert "Fleet summary: 2/2 paths reached t = 1" in out
    assert "1d -> 2d" in out  # at least one path escalates d -> dd
    assert "x from batching" in out


def test_homotopy_quickstart_distinct_endpoint_clustering():
    quickstart = importlib.import_module("homotopy_quickstart")

    class _Path:
        def __init__(self, point, reached=True):
            self.final_point = point
            self.reached = reached

    class _Homotopy:
        backend = "realified"

    paths = [
        _Path([1.0, 0.0]),          # 1 + 0j (realified 1-dim point)
        _Path([1.0, 1e-6]),         # same cluster
        _Path([-1.0, 0.0]),         # second cluster
        _Path([5.0, 5.0], reached=False),  # ignored: never reached
    ]
    assert quickstart.distinct_endpoints(_Homotopy(), paths) == 2


def test_path_fleet_matches_single_path_tracker():
    path_fleet = importlib.import_module("path_fleet")
    from repro.series import track_path

    fleet = path_fleet.track_fleet(tol=1e-8)
    reference = track_path(
        path_fleet.branch_point_system,
        path_fleet.branch_point_jacobian,
        [0.5],
        tol=1e-8,
        order=10,
        max_steps=48,
    )
    assert fleet.paths[0].steps == reference.steps
    assert fleet.paths[0].reached == reference.reached
