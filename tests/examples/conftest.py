"""Make the example scripts importable as modules."""

from __future__ import annotations

import sys
from pathlib import Path

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

if str(EXAMPLES_DIR) not in sys.path:
    sys.path.insert(0, str(EXAMPLES_DIR))
