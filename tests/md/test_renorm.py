"""Unit and property tests for expansion renormalization."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import renorm

limb_floats = st.floats(min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False)


def exact_sum(limbs):
    return sum((Fraction(float(v)) for v in limbs), Fraction(0))


class TestVecSum:
    @given(st.lists(limb_floats, min_size=1, max_size=12))
    def test_preserves_exact_sum(self, limbs):
        out = renorm.vecsum(limbs)
        assert exact_sum(out) == exact_sum(limbs)

    @given(st.lists(limb_floats, min_size=1, max_size=12))
    def test_length_preserved(self, limbs):
        assert len(renorm.vecsum(limbs)) == len(limbs)

    def test_single_element(self):
        assert renorm.vecsum([3.5]) == [3.5]


class TestExtractLeading:
    @given(st.lists(limb_floats, min_size=2, max_size=12))
    def test_value_preserved(self, limbs):
        head, rest = renorm.extract_leading(limbs)
        assert Fraction(head) + exact_sum(rest) == exact_sum(limbs)

    @given(st.lists(limb_floats, min_size=2, max_size=12))
    def test_head_close_to_sum(self, limbs):
        head, rest = renorm.extract_leading(limbs)
        total = exact_sum(limbs)
        biggest = max(abs(Fraction(float(v))) for v in limbs)
        # head is within one ulp of the total; under deep cancellation the
        # residual of the two distillation passes is bounded by the square
        # of the unit roundoff applied to the largest input limb
        tolerance = max(abs(total) * Fraction(1, 2 ** 50), biggest * Fraction(1, 2 ** 100))
        assert abs(Fraction(head) - total) <= tolerance


class TestRenormalize:
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 8])
    def test_zero_input(self, m):
        out = renorm.renormalize([0.0, 0.0, 0.0], m)
        assert len(out) == m
        assert all(v == 0.0 for v in out)

    @pytest.mark.parametrize("m", [2, 4, 8])
    @given(limbs=st.lists(limb_floats, min_size=1, max_size=16))
    @settings(max_examples=60, deadline=None)
    def test_relative_accuracy(self, limbs, m):
        out = renorm.renormalize(limbs, m)
        assert len(out) == m
        total = exact_sum(limbs)
        kept = exact_sum(out)
        biggest = max(abs(Fraction(float(v))) for v in limbs)
        # relative accuracy at the target precision, with an absolute
        # floor proportional to the largest input limb for the deeply
        # cancelling cases (where the result is far below the inputs)
        tolerance = max(abs(total), biggest * Fraction(1, 2 ** 100)) * Fraction(1, 2 ** (50 * m))
        assert abs(kept - total) <= tolerance

    @pytest.mark.parametrize("m", [2, 4])
    def test_nonoverlap_of_output(self, m):
        # a deliberately overlapping input expansion
        limbs = [1.0, 0.75, 0.5, 2.0 ** -30, 2.0 ** -31]
        out = renorm.renormalize(limbs, m)
        for hi, lo in zip(out, out[1:]):
            if lo == 0.0:
                continue
            assert abs(lo) <= abs(hi) * 2.0 ** -50

    def test_cancellation_keeps_low_order_value(self):
        # the leading terms cancel exactly; the value lives far below
        limbs = [1.0, -1.0, 3e-40, 2e-57]
        out = renorm.renormalize(limbs, 2)
        assert exact_sum(out) == exact_sum(limbs)

    def test_near_cancellation_does_not_waste_limbs(self):
        a = 0.5776581600882187
        limbs = [a, -a * (1 + 2.0 ** -52), 1e-33, -2e-50]
        out = renorm.renormalize(limbs, 3)
        total = exact_sum(limbs)
        rel = abs(exact_sum(out) - total) / abs(total)
        assert rel < Fraction(1, 2 ** 140)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(7)
        arrays = [rng.standard_normal(5) * 10.0 ** (-15 * k) for k in range(6)]
        out_vec = renorm.renormalize(arrays, 4)
        for j in range(5):
            scalar = renorm.renormalize([float(a[j]) for a in arrays], 4)
            for limb_vec, limb_scalar in zip(out_vec, scalar):
                assert limb_vec[j] == limb_scalar

    def test_pads_with_zeros(self):
        out = renorm.renormalize([1.0], 4)
        assert out[0] == 1.0
        assert out[1:] == [0.0, 0.0, 0.0]


class TestCompact:
    def test_preserves_sum(self):
        limbs = [1.0, 2.0 ** -53, 2.0 ** -54]
        out = renorm.compact(limbs)
        assert exact_sum(out) == exact_sum(limbs)
