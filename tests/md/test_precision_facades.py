"""Tests for the precision-specific facade modules (dd/qd/od)."""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.md import double_double, generic, octo_double, quad_double


def exact(limbs):
    return sum((Fraction(float(v)) for v in limbs), Fraction(0))


FACADES = {
    2: double_double,
    4: quad_double,
    8: octo_double,
}


@pytest.mark.parametrize("m", [2, 4, 8])
class TestFacadeConsistency:
    def test_limb_count_and_eps(self, m):
        mod = FACADES[m]
        assert mod.LIMBS == m
        assert mod.EPS == mod.PRECISION.eps
        assert 0 < mod.EPS < 2.0 ** (-50 * m + 4)

    def test_from_double_and_zero(self, m):
        mod = FACADES[m]
        x = mod.from_double(2.5)
        assert len(x) == m and x[0] == 2.5
        z = mod.zero()
        assert exact(z) == 0 and len(z) == m

    def test_roundtrip_third(self, m):
        mod = FACADES[m]
        third = mod.div(mod.from_double(1.0), mod.from_double(3.0))
        back = mod.mul(third, mod.from_double(3.0))
        assert abs(exact(back) - 1) < Fraction(1, 2 ** (50 * m))

    def test_add_sub_inverse(self, m):
        mod = FACADES[m]
        x = mod.div(mod.from_double(1.0), mod.from_double(7.0))
        y = mod.div(mod.from_double(2.0), mod.from_double(11.0))
        s = mod.add(x, y)
        d = mod.sub(s, y)
        assert abs(exact(d) - exact(x)) < Fraction(1, 2 ** (50 * m))

    def test_sqr_matches_mul(self, m):
        mod = FACADES[m]
        x = mod.div(mod.from_double(3.0), mod.from_double(7.0))
        assert abs(exact(mod.sqr(x)) - exact(mod.mul(x, x))) < Fraction(1, 2 ** (50 * m + 40))

    def test_sqrt(self, m):
        mod = FACADES[m]
        r = mod.sqrt(mod.from_double(2.0))
        assert abs(exact(r) ** 2 - 2) < Fraction(1, 2 ** (50 * m))

    def test_negate(self, m):
        mod = FACADES[m]
        x = mod.div(mod.from_double(1.0), mod.from_double(3.0))
        assert exact(mod.negate(x)) == -exact(x)

    def test_fma(self, m):
        mod = FACADES[m]
        x = mod.div(mod.from_double(1.0), mod.from_double(3.0))
        y = mod.div(mod.from_double(1.0), mod.from_double(5.0))
        z = mod.from_double(2.0)
        result = mod.fma(x, y, z)
        reference = exact(x) * exact(y) + 2
        assert abs((exact(result) - reference) / reference) < Fraction(1, 2 ** (50 * m))


class TestCrossPrecision:
    def test_dd_truncation_of_qd(self):
        qd_third = quad_double.div(quad_double.from_double(1.0), quad_double.from_double(3.0))
        dd_third = double_double.div(double_double.from_double(1.0), double_double.from_double(3.0))
        # the first two limbs agree
        assert qd_third[0] == dd_third[0]
        assert abs(Fraction(qd_third[1]) - Fraction(dd_third[1])) < Fraction(1, 2 ** 150)

    def test_precision_improves_with_limbs(self):
        errors = []
        for mod in (double_double, quad_double, octo_double):
            third = mod.div(mod.from_double(1.0), mod.from_double(3.0))
            errors.append(abs(exact(third) - Fraction(1, 3)))
        assert errors[0] > errors[1] > errors[2]

    def test_generic_matches_facade(self):
        x = quad_double.from_double(1.0)
        y = quad_double.from_double(3.0)
        assert exact(quad_double.div(x, y)) == exact(generic.div(x, y, 4))
