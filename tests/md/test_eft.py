"""Unit tests for the error-free transformations."""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.md import eft

finite_doubles = st.floats(
    min_value=-1e150, max_value=1e150, allow_nan=False, allow_infinity=False
)


class TestTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_exactness(self, a, b):
        s, e = eft.two_sum(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) + Fraction(b)

    @given(finite_doubles, finite_doubles)
    def test_head_is_float_sum(self, a, b):
        s, _ = eft.two_sum(a, b)
        assert s == a + b

    def test_error_captures_lost_bits(self):
        s, e = eft.two_sum(1.0, 2.0 ** -60)
        assert s == 1.0
        assert e == 2.0 ** -60

    def test_zero_operands(self):
        assert eft.two_sum(0.0, 0.0) == (0.0, 0.0)

    def test_vectorized(self):
        a = np.array([1.0, 1e16, -3.5])
        b = np.array([2.0 ** -60, 1.0, 3.5])
        s, e = eft.two_sum(a, b)
        for i in range(3):
            ss, ee = eft.two_sum(float(a[i]), float(b[i]))
            assert s[i] == ss and e[i] == ee


class TestQuickTwoSum:
    @given(finite_doubles, finite_doubles)
    def test_exact_when_ordered(self, a, b):
        hi, lo = (a, b) if abs(a) >= abs(b) else (b, a)
        s, e = eft.quick_two_sum(hi, lo)
        assert Fraction(s) + Fraction(e) == Fraction(hi) + Fraction(lo)

    def test_matches_two_sum_when_ordered(self):
        s1, e1 = eft.quick_two_sum(1.0, 2.0 ** -70)
        s2, e2 = eft.two_sum(1.0, 2.0 ** -70)
        assert (s1, e1) == (s2, e2)


class TestTwoDiff:
    @given(finite_doubles, finite_doubles)
    def test_exactness(self, a, b):
        s, e = eft.two_diff(a, b)
        assert Fraction(s) + Fraction(e) == Fraction(a) - Fraction(b)


class TestSplit:
    @given(st.floats(min_value=-1e290, max_value=1e290, allow_nan=False))
    def test_exact_split(self, a):
        hi, lo = eft.split(a)
        assert Fraction(hi) + Fraction(lo) == Fraction(a)

    @given(st.floats(min_value=-1e290, max_value=1e290, allow_nan=False))
    def test_halves_fit_in_26_bits(self, a):
        hi, lo = eft.split(a)
        for half in (hi, lo):
            if half == 0.0:
                continue
            mantissa, _ = math.frexp(half)
            # 26 or fewer significant bits => mantissa * 2**26 is an integer
            assert (abs(mantissa) * 2.0 ** 27) % 1.0 in (0.0, 0.5) or float(
                abs(mantissa) * 2.0 ** 27
            ).is_integer()


#: Operands whose products neither overflow nor underflow: Dekker's
#: TwoProd is exact only when the rounding error of the product is
#: itself representable, which fails in the subnormal range.
product_safe = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-100, max_value=1e100, allow_nan=False),
    st.floats(min_value=-1e100, max_value=-1e-100, allow_nan=False),
)


class TestTwoProd:
    @given(product_safe, product_safe)
    def test_exactness(self, a, b):
        p, e = eft.two_prod(a, b)
        assert Fraction(p) + Fraction(e) == Fraction(a) * Fraction(b)

    @given(product_safe)
    def test_two_sqr_matches_two_prod(self, a):
        p1, e1 = eft.two_sqr(a)
        p2, e2 = eft.two_prod(a, a)
        assert Fraction(p1) + Fraction(e1) == Fraction(p2) + Fraction(e2)

    def test_vectorized(self):
        a = np.array([1.0 / 3.0, 7.1e8])
        b = np.array([3.0, 1.0 / 7.1e8])
        p, e = eft.two_prod(a, b)
        for i in range(2):
            pp, ee = eft.two_prod(float(a[i]), float(b[i]))
            assert p[i] == pp and e[i] == ee


class TestSplitterConstants:
    def test_splitter_value(self):
        assert eft.SPLITTER == 2.0 ** 27 + 1.0

    def test_threshold_is_below_overflow(self):
        assert eft.SPLITTER * eft.SPLIT_THRESHOLD < math.inf
