"""Property and unit tests for the generic expansion arithmetic.

Every operation is validated against exact rational arithmetic on the
*stored* operands (the rounding of the decimal inputs themselves is not
attributed to the operation under test).
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.md import generic
from repro.md.number import MultiDouble


def exact(limbs):
    return sum((Fraction(float(v)) for v in limbs), Fraction(0))


def relative_error(limbs, reference):
    if reference == 0:
        return abs(exact(limbs))
    return abs((exact(limbs) - reference) / reference)


def md_operand(m, seed_fraction):
    """Build a full-precision m-limb operand from an exact rational."""
    return MultiDouble(seed_fraction, m).limbs


rationals = st.fractions(
    min_value=Fraction(-10 ** 6), max_value=Fraction(10 ** 6), max_denominator=10 ** 9
)
nonzero_rationals = rationals.filter(lambda f: abs(f) > Fraction(1, 10 ** 6))


@pytest.mark.parametrize("m", [2, 3, 4, 8])
class TestConstruction:
    def test_from_double(self, m):
        x = generic.from_double(1.5, m)
        assert len(x) == m
        assert x[0] == 1.5
        assert all(v == 0.0 for v in x[1:])

    def test_zero(self, m):
        z = generic.zero(m)
        assert len(z) == m and all(v == 0.0 for v in z)

    def test_from_doubles_renormalizes(self, m):
        x = generic.from_doubles([1.0, 1.0, 2.0 ** -70], m)
        assert exact(x) == Fraction(2) + Fraction(2) ** -70 if m > 1 else exact(x) == 2.0

    def test_to_double(self, m):
        x = generic.from_double(-2.25, m)
        assert generic.to_double(x) == -2.25


@pytest.mark.parametrize("m", [2, 4, 8])
class TestAddSub:
    @given(fa=rationals, fb=rationals)
    @settings(max_examples=40, deadline=None)
    def test_add_accuracy(self, m, fa, fb):
        x, y = md_operand(m, fa), md_operand(m, fb)
        reference = exact(x) + exact(y)
        result = generic.add(x, y, m)
        assert len(result) == m
        assert relative_error(result, reference) <= Fraction(1, 2 ** (50 * m))

    @given(fa=rationals, fb=rationals)
    @settings(max_examples=40, deadline=None)
    def test_sub_accuracy(self, m, fa, fb):
        x, y = md_operand(m, fa), md_operand(m, fb)
        reference = exact(x) - exact(y)
        result = generic.sub(x, y, m)
        assert relative_error(result, reference) <= Fraction(1, 2 ** (50 * m))

    @given(fa=rationals)
    @settings(max_examples=25, deadline=None)
    def test_add_negate_is_zero(self, m, fa):
        x = md_operand(m, fa)
        result = generic.add(x, generic.negate(x), m)
        assert exact(result) == 0

    def test_commutativity(self, m):
        x = md_operand(m, Fraction(1, 3))
        y = md_operand(m, Fraction(2, 7))
        assert exact(generic.add(x, y, m)) == exact(generic.add(y, x, m))

    def test_identity(self, m):
        x = md_operand(m, Fraction(22, 7))
        z = generic.zero(m)
        assert exact(generic.add(x, z, m)) == exact(x)

    def test_add_double(self, m):
        x = md_operand(m, Fraction(1, 3))
        result = generic.add_double(x, 0.25, m)
        assert relative_error(result, exact(x) + Fraction(1, 4)) <= Fraction(1, 2 ** (50 * m))

    def test_cancellation_to_tiny_difference(self, m):
        x = md_operand(m, Fraction(1, 3))
        y = generic.add_double(x, 2.0 ** -140, m) if m > 2 else generic.add_double(x, 2.0 ** -80, m)
        diff = generic.sub(y, x, m)
        reference = exact(y) - exact(x)
        assert relative_error(diff, reference) <= Fraction(1, 2 ** 45)


@pytest.mark.parametrize("m", [2, 4, 8])
class TestMul:
    @given(fa=rationals, fb=rationals)
    @settings(max_examples=40, deadline=None)
    def test_mul_accuracy(self, m, fa, fb):
        x, y = md_operand(m, fa), md_operand(m, fb)
        reference = exact(x) * exact(y)
        result = generic.mul(x, y, m)
        assert relative_error(result, reference) <= Fraction(1, 2 ** (50 * m))

    @given(fa=rationals)
    @settings(max_examples=25, deadline=None)
    def test_sqr_matches_mul(self, m, fa):
        x = md_operand(m, fa)
        reference = exact(x) ** 2
        assert relative_error(generic.sqr(x, m), reference) <= Fraction(1, 2 ** (50 * m))

    def test_mul_by_one(self, m):
        x = md_operand(m, Fraction(355, 113))
        one = generic.from_double(1.0, m)
        assert exact(generic.mul(x, one, m)) == exact(x)

    def test_mul_by_zero(self, m):
        x = md_operand(m, Fraction(355, 113))
        z = generic.zero(m)
        assert exact(generic.mul(x, z, m)) == 0

    def test_mul_double(self, m):
        x = md_operand(m, Fraction(1, 7))
        result = generic.mul_double(x, 3.0, m)
        assert relative_error(result, exact(x) * 3) <= Fraction(1, 2 ** (50 * m))

    def test_mul_pow2_is_exact(self, m):
        x = md_operand(m, Fraction(1, 3))
        result = generic.mul_pow2(x, 0.5)
        assert exact(result) == exact(x) / 2

    def test_fma(self, m):
        x = md_operand(m, Fraction(1, 3))
        y = md_operand(m, Fraction(2, 7))
        z = md_operand(m, Fraction(5, 11))
        reference = exact(x) * exact(y) + exact(z)
        assert relative_error(generic.fma(x, y, z, m), reference) <= Fraction(1, 2 ** (50 * m))


@pytest.mark.parametrize("m", [2, 4, 8])
class TestDivSqrt:
    @given(fa=rationals, fb=nonzero_rationals)
    @settings(max_examples=40, deadline=None)
    def test_div_accuracy(self, m, fa, fb):
        x, y = md_operand(m, fa), md_operand(m, fb)
        assume(exact(y) != 0)
        reference = exact(x) / exact(y)
        result = generic.div(x, y, m)
        assert relative_error(result, reference) <= Fraction(1, 2 ** (50 * m))

    @given(fb=nonzero_rationals)
    @settings(max_examples=25, deadline=None)
    def test_reciprocal_times_self_is_one(self, m, fb):
        y = md_operand(m, fb)
        assume(exact(y) != 0)
        recip = generic.reciprocal(y, m)
        product = generic.mul(recip, y, m)
        assert relative_error(product, Fraction(1)) <= Fraction(1, 2 ** (50 * m - 2))

    def test_div_by_one(self, m):
        x = md_operand(m, Fraction(17, 13))
        one = generic.from_double(1.0, m)
        assert relative_error(generic.div(x, one, m), exact(x)) <= Fraction(1, 2 ** (50 * m))

    def test_div_double(self, m):
        x = md_operand(m, Fraction(17, 13))
        result = generic.div_double(x, 4.0, m)
        assert relative_error(result, exact(x) / 4) <= Fraction(1, 2 ** (50 * m))

    @given(fa=st.fractions(min_value=Fraction(1, 10 ** 6), max_value=Fraction(10 ** 6), max_denominator=10 ** 9))
    @settings(max_examples=30, deadline=None)
    def test_sqrt_squared(self, m, fa):
        x = md_operand(m, fa)
        root = generic.sqrt(x, m)
        squared = generic.sqr(root, m)
        assert relative_error(squared, exact(x)) <= Fraction(1, 2 ** (50 * m - 2))

    def test_sqrt_of_four(self, m):
        root = generic.sqrt(generic.from_double(4.0, m), m)
        assert exact(root) == 2


class TestDoubleDoubleFastPath:
    """The QDlib-style dd specialisations must agree with the generic path."""

    @given(fa=rationals, fb=rationals)
    @settings(max_examples=40, deadline=None)
    def test_dd_add_accuracy(self, fa, fb):
        x, y = md_operand(2, fa), md_operand(2, fb)
        result = generic.dd_add(x, y)
        assert relative_error(result, exact(x) + exact(y)) <= Fraction(1, 2 ** 101)

    @given(fa=rationals, fb=rationals)
    @settings(max_examples=40, deadline=None)
    def test_dd_mul_accuracy(self, fa, fb):
        x, y = md_operand(2, fa), md_operand(2, fb)
        result = generic.dd_mul(x, y)
        assert relative_error(result, exact(x) * exact(y)) <= Fraction(1, 2 ** 100)

    @given(fa=rationals, fb=nonzero_rationals)
    @settings(max_examples=40, deadline=None)
    def test_dd_div_accuracy(self, fa, fb):
        x, y = md_operand(2, fa), md_operand(2, fb)
        assume(exact(y) != 0)
        result = generic.dd_div(x, y)
        assert relative_error(result, exact(x) / exact(y)) <= Fraction(1, 2 ** 99)

    def test_dispatch_from_generic_add(self):
        x, y = md_operand(2, Fraction(1, 3)), md_operand(2, Fraction(2, 7))
        assert exact(generic.add(x, y, 2)) == exact(generic.dd_add(x, y))


class TestVectorizedLimbArrays:
    """The same generic code must operate element-wise on ndarray limbs."""

    @pytest.mark.parametrize("m", [2, 4])
    def test_add_matches_scalar(self, m):
        rng = np.random.default_rng(3)
        shape = (6,)
        x = tuple(rng.standard_normal(shape) * 10.0 ** (-16 * k) for k in range(m))
        y = tuple(rng.standard_normal(shape) * 10.0 ** (-16 * k) for k in range(m))
        out = generic.add(x, y, m)
        assert all(o.shape == shape for o in out)
        for j in range(shape[0]):
            xs = tuple(float(v[j]) for v in x)
            ys = tuple(float(v[j]) for v in y)
            expected = generic.add(xs, ys, m)
            for limb_arr, limb_exp in zip(out, expected):
                assert limb_arr[j] == limb_exp

    @pytest.mark.parametrize("m", [2, 4])
    def test_mul_matches_scalar(self, m):
        rng = np.random.default_rng(4)
        shape = (5,)
        x = tuple(rng.standard_normal(shape) * 10.0 ** (-16 * k) for k in range(m))
        y = tuple(rng.standard_normal(shape) * 10.0 ** (-16 * k) for k in range(m))
        out = generic.mul(x, y, m)
        for j in range(shape[0]):
            xs = tuple(float(v[j]) for v in x)
            ys = tuple(float(v[j]) for v in y)
            expected = generic.mul(xs, ys, m)
            for limb_arr, limb_exp in zip(out, expected):
                assert limb_arr[j] == limb_exp

    def test_div_broadcasting(self):
        m = 2
        x = (np.full((3,), 1.0), np.zeros(3))
        y = (np.full((3,), 3.0), np.zeros(3))
        out = generic.div(x, y, m)
        scalar = generic.div((1.0, 0.0), (3.0, 0.0), m)
        for limb_arr, limb_exp in zip(out, scalar):
            assert np.all(limb_arr == limb_exp)

    def test_sqrt_vectorized(self):
        m = 4
        x = tuple(np.array([4.0, 9.0, 2.0]) if k == 0 else np.zeros(3) for k in range(m))
        out = generic.sqrt(x, m)
        assert np.allclose(out[0], [2.0, 3.0, np.sqrt(2.0)])
