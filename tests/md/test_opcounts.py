"""Tests for operation counting and the Table 1 reproduction."""

from __future__ import annotations

import pytest

from repro.md import generic
from repro.md.counting import CountingFloat, OpCounter, count_operation
from repro.md.opcounts import (
    PAPER_AVERAGES,
    PAPER_TABLE1,
    cost_table,
    measured_costs,
    paper_costs,
)


class TestCountingFloat:
    def test_basic_counts(self):
        counter = OpCounter()
        a = CountingFloat(2.0, counter)
        b = CountingFloat(3.0, counter)
        c = (a + b) * a - b / a
        assert float(c) == 2.0 * 5.0 - 1.5
        assert counter.additions == 1
        assert counter.multiplications == 1
        assert counter.subtractions == 1
        assert counter.divisions == 1
        assert counter.total == 4

    def test_mixed_operands_counted(self):
        counter = OpCounter()
        a = CountingFloat(2.0, counter)
        _ = 1.0 + a
        _ = a * 3.0
        _ = 5.0 / a
        assert counter.additions == 1
        assert counter.multiplications == 1
        assert counter.divisions == 1

    def test_negation_free(self):
        counter = OpCounter()
        a = CountingFloat(2.0, counter)
        _ = -a
        assert counter.total == 0

    def test_sqrt_counted_separately(self):
        counter = OpCounter()
        a = CountingFloat(2.0, counter)
        _ = a.sqrt()
        assert counter.sqrts == 1
        assert counter.total == 0

    def test_comparisons_counted_separately(self):
        counter = OpCounter()
        a = CountingFloat(2.0, counter)
        _ = a < 3.0
        assert counter.comparisons == 1
        assert counter.total == 0

    def test_reset(self):
        counter = OpCounter()
        a = CountingFloat(1.0, counter)
        _ = a + a
        counter.reset()
        assert counter.total == 0

    def test_counter_addition(self):
        c1 = OpCounter(additions=2, multiplications=1)
        c2 = OpCounter(divisions=3)
        merged = c1 + c2
        assert merged.additions == 2 and merged.divisions == 3 and merged.total == 6

    def test_as_dict(self):
        counter = OpCounter(additions=1, subtractions=2, multiplications=3, divisions=4)
        d = counter.as_dict()
        assert d["total"] == 10 and d["mul"] == 3


class TestPaperTable1:
    def test_reference_values(self):
        assert PAPER_TABLE1[2].add == 20
        assert PAPER_TABLE1[2].mul == 23
        assert PAPER_TABLE1[2].div == 70
        assert PAPER_TABLE1[4].div == 893
        assert PAPER_TABLE1[8].mul == 1742

    def test_averages_match_paper(self):
        for limbs, avg in PAPER_AVERAGES.items():
            assert PAPER_TABLE1[limbs].average == pytest.approx(avg, abs=0.06)

    def test_double_costs_one(self):
        costs = paper_costs(1)
        assert costs.add == costs.mul == costs.div == 1

    def test_cost_of_fma(self):
        costs = paper_costs(4)
        assert costs.cost_of("fma") == costs.add + costs.mul

    def test_unknown_precision_falls_back_to_measured(self):
        assert paper_costs(3).limbs == 3


class TestMeasuredCounts:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_counts_are_positive_and_grow(self, m):
        costs = measured_costs(m)
        assert costs.add > 0 and costs.mul >= costs.add and costs.div > costs.mul

    def test_growth_with_precision(self):
        c2, c4, c8 = measured_costs(2), measured_costs(4), measured_costs(8)
        assert c4.average > 2 * c2.average
        assert c8.average > 2 * c4.average

    def test_count_operation_returns_counter(self):
        counter = count_operation(generic.add, 4)
        assert isinstance(counter, OpCounter)
        assert counter.total > 0

    def test_measured_double_is_identity(self):
        costs = measured_costs(1)
        assert costs.add == 1 and costs.div == 1

    def test_same_order_of_magnitude_as_paper(self):
        """Our branch-free renormalization is costlier than CAMPARY's, but
        the counts must stay within a small constant factor."""
        for m in (2, 4, 8):
            ours = measured_costs(m)
            paper = paper_costs(m)
            for kind in ("add", "mul", "div"):
                ratio = ours.cost_of(kind) / paper.cost_of(kind)
                assert 0.5 < ratio < 8.0


class TestCostTable:
    def test_paper_table_shape(self):
        table = cost_table(source="paper")
        assert set(table) == {2, 4, 8}
        assert table[4]["div"] == 893

    def test_measured_table(self):
        table = cost_table(limb_counts=(2, 4), source="measured")
        assert set(table) == {2, 4}
        assert table[2]["add"] == measured_costs(2).add
