"""Tests for the elementary functions in multiple double precision."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.md import MultiDouble
from repro.md.functions import atan, cos, exp, log, pi, power, sin, sin_cos


def relative_error(value: MultiDouble, reference: Fraction) -> float:
    if reference == 0:
        return abs(float(value.to_fraction()))
    return abs(float((value.to_fraction() - reference) / reference))


#: Reference value of pi to 66 decimal digits (enough to validate the
#: double double and quad double constants directly; octo double is
#: validated by cross-consistency against a higher-precision computation).
PI_66 = Fraction(
    3141592653589793238462643383279502884197169399375105820974944592307,
    10 ** 66,
)


@pytest.mark.parametrize("limbs,tol", [(2, 1e-30), (4, 1e-62), (8, 1e-124)])
class TestConstantsAndExpLog:
    def test_pi(self, limbs, tol):
        value = pi(limbs)
        assert float(value) == pytest.approx(math.pi)
        # direct check against the 66-digit literal where it suffices
        assert relative_error(value, PI_66) < max(tol, 1e-64)
        # cross-consistency with a higher-precision computation
        reference = pi(2 * limbs).to_fraction()
        assert relative_error(value, reference) < tol

    def test_exp_of_one_matches_e(self, limbs, tol):
        # e to 60+ digits via the exactly summed series
        reference = sum(Fraction(1, math.factorial(k)) for k in range(150))
        assert relative_error(exp(MultiDouble(1, limbs)), reference) < 10 * tol

    def test_exp_zero_is_one(self, limbs, tol):
        assert exp(MultiDouble(0, limbs)).to_fraction() == 1

    def test_exp_addition_law(self, limbs, tol):
        a = MultiDouble(Fraction(1, 3), limbs)
        b = MultiDouble(Fraction(2, 7), limbs)
        lhs = exp(a + b)
        rhs = exp(a) * exp(b)
        assert relative_error(lhs, rhs.to_fraction()) < 100 * tol

    def test_log_inverts_exp(self, limbs, tol):
        x = MultiDouble(Fraction(5, 4), limbs)
        assert relative_error(log(exp(x)), x.to_fraction()) < 100 * tol

    def test_exp_inverts_log(self, limbs, tol):
        x = MultiDouble(Fraction(22, 7), limbs)
        assert relative_error(exp(log(x)), x.to_fraction()) < 100 * tol

    def test_log_of_one_is_zero(self, limbs, tol):
        assert abs(float(log(MultiDouble(1, limbs)).to_fraction())) < tol


@pytest.mark.parametrize("limbs,tol", [(2, 1e-29), (4, 1e-61), (8, 1e-122)])
class TestTrigonometry:
    def test_pythagorean_identity(self, limbs, tol):
        x = MultiDouble(Fraction(3, 7), limbs)
        s, c = sin_cos(x)
        assert relative_error(s * s + c * c, Fraction(1)) < 10 * tol

    def test_sine_of_pi_over_six(self, limbs, tol):
        x = pi(limbs) * MultiDouble(Fraction(1, 6), limbs)
        assert relative_error(sin(x), Fraction(1, 2)) < 100 * tol

    def test_cosine_of_pi_is_minus_one(self, limbs, tol):
        assert relative_error(cos(pi(limbs)), Fraction(-1)) < 100 * tol

    def test_quadrant_identities(self, limbs, tol):
        x = MultiDouble(Fraction(2, 5), limbs)
        half_pi = pi(limbs) * MultiDouble(Fraction(1, 2), limbs)
        assert relative_error(sin(x + half_pi), cos(x).to_fraction()) < 100 * tol
        assert relative_error(cos(x + half_pi), (-sin(x)).to_fraction()) < 100 * tol

    def test_atan_inverts_tangent(self, limbs, tol):
        y = MultiDouble(Fraction(1, 3), limbs)
        s, c = sin_cos(y)
        assert relative_error(atan(s / c), y.to_fraction()) < 100 * tol

    def test_atan_of_one_is_quarter_pi(self, limbs, tol):
        quarter_pi = pi(limbs).to_fraction() / 4
        assert relative_error(atan(MultiDouble(1, limbs)), quarter_pi) < 100 * tol


class TestPowerAndEdgeCases:
    def test_integer_power(self):
        x = MultiDouble(Fraction(3, 2), 4)
        assert power(x, 5).to_fraction() == Fraction(243, 32)

    def test_real_power_matches_sqrt(self):
        x = MultiDouble(2, 4)
        result = power(x, MultiDouble(Fraction(1, 2), 4))
        assert relative_error(result, MultiDouble(2, 8).sqrt().to_fraction()) < 1e-60

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            log(MultiDouble(0, 2))
        with pytest.raises(ValueError):
            log(MultiDouble(-1, 2))

    def test_exp_overflow_guard(self):
        with pytest.raises(OverflowError):
            exp(MultiDouble(1000, 2))

    def test_plain_float_inputs_are_promoted(self):
        assert relative_error(exp(0.5, precision=4), exp(MultiDouble(0.5, 4)).to_fraction()) == 0
        assert abs(float(sin(0.0, precision=2).to_fraction())) == 0
