"""Tests for the scalar MultiDouble / ComplexMultiDouble classes."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.md import ComplexMultiDouble, MultiDouble
from repro.md.constants import get_precision

rationals = st.fractions(
    min_value=Fraction(-10 ** 6), max_value=Fraction(10 ** 6), max_denominator=10 ** 9
)


class TestConstruction:
    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_from_float(self, m):
        x = MultiDouble(1.5, m)
        assert x.to_fraction() == Fraction(3, 2)
        assert x.m == m

    def test_from_int(self):
        assert MultiDouble(7, 4).to_fraction() == 7

    def test_from_fraction_better_than_double(self):
        x = MultiDouble(Fraction(1, 3), 4)
        err = abs(x.to_fraction() - Fraction(1, 3))
        assert err < Fraction(1, 3) * Fraction(1, 2 ** 200)
        assert err > 0  # 1/3 is not exactly representable

    def test_from_string(self):
        x = MultiDouble("0.1", 4)
        assert abs(x.to_fraction() - Fraction(1, 10)) < Fraction(1, 2 ** 200)

    def test_from_string_with_exponent(self):
        x = MultiDouble("2.5e3", 2)
        assert x.to_fraction() == 2500

    def test_from_limbs(self):
        x = MultiDouble.from_limbs((1.0, 2.0 ** -60), 2)
        assert x.to_fraction() == 1 + Fraction(1, 2 ** 60)

    def test_precision_names(self):
        assert MultiDouble(1.0, "dd").m == 2
        assert MultiDouble(1.0, "qd").m == 4
        assert MultiDouble(1.0, "od").m == 8
        assert MultiDouble(1.0, "2d").m == 2

    def test_precision_conversion(self):
        x = MultiDouble(Fraction(1, 3), 8)
        y = MultiDouble(x, 2)
        assert y.m == 2
        assert abs(y.to_fraction() - Fraction(1, 3)) < Fraction(1, 2 ** 100)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            MultiDouble(object(), 2)


class TestArithmetic:
    @pytest.mark.parametrize("m", [2, 4, 8])
    @given(fa=rationals, fb=rationals)
    @settings(max_examples=25, deadline=None)
    def test_field_operations(self, m, fa, fb):
        a, b = MultiDouble(fa, m), MultiDouble(fb, m)
        ea, eb = a.to_fraction(), b.to_fraction()
        eps = Fraction(1, 2 ** (50 * m))

        def check(md, exact_value):
            if exact_value == 0:
                assert abs(md.to_fraction()) <= eps
            else:
                assert abs((md.to_fraction() - exact_value) / exact_value) <= eps

        check(a + b, ea + eb)
        check(a - b, ea - eb)
        check(a * b, ea * eb)
        if eb != 0:
            check(a / b, ea / eb)

    def test_mixed_operand_types(self):
        a = MultiDouble(Fraction(1, 3), 4)
        assert abs(((a + 1) - 1).to_fraction() - a.to_fraction()) < Fraction(1, 2 ** 190)
        assert ((a * 3) - 1).to_fraction() < Fraction(1, 2 ** 190)
        assert (2 * a).to_fraction() == 2 * a.to_fraction()
        # 1 - a may need one extra borrow bit, so it is only accurate to eps
        assert abs((1 - a).to_fraction() - (1 - a.to_fraction())) < Fraction(1, 2 ** 200)
        assert abs((1 / MultiDouble(4, 4)).to_fraction() - Fraction(1, 4)) == 0

    def test_negation_and_abs(self):
        a = MultiDouble(Fraction(-5, 7), 4)
        assert (-a).to_fraction() == -a.to_fraction()
        assert abs(a).to_fraction() == -a.to_fraction()
        assert abs(-a).to_fraction() == abs(a).to_fraction()

    def test_integer_powers(self):
        a = MultiDouble(Fraction(3, 2), 4)
        assert (a ** 0).to_fraction() == 1
        assert (a ** 3).to_fraction() == Fraction(27, 8)
        assert abs((a ** -2).to_fraction() - Fraction(4, 9)) < Fraction(1, 2 ** 190)

    def test_power_requires_integer(self):
        with pytest.raises(TypeError):
            MultiDouble(2.0, 2) ** 0.5

    def test_sqrt(self):
        r = MultiDouble(2, 8).sqrt()
        assert abs(r.to_fraction() ** 2 - 2) < Fraction(1, 2 ** 400)

    def test_sqrt_of_zero(self):
        assert MultiDouble(0.0, 4).sqrt().to_fraction() == 0

    def test_sqrt_negative_raises(self):
        with pytest.raises(ValueError):
            MultiDouble(-1.0, 2).sqrt()


class TestComparisons:
    def test_ordering(self):
        a = MultiDouble(Fraction(1, 3), 4)
        b = MultiDouble(Fraction(1, 3), 4) + MultiDouble(Fraction(1, 2 ** 150), 4)
        assert a < b and b > a and a <= b and b >= a and a != b
        assert not a == b

    def test_equality_with_plain_numbers(self):
        assert MultiDouble(2.5, 4) == 2.5
        assert MultiDouble(2.5, 4) != 2.0
        assert MultiDouble(3, 2) == 3

    def test_hash_consistency(self):
        a = MultiDouble(1.5, 2)
        b = MultiDouble(1.5, 4)
        assert a == b
        assert hash(a) == hash(b)


class TestConversions:
    def test_to_float(self):
        assert float(MultiDouble(Fraction(1, 3), 4)) == pytest.approx(1 / 3)

    def test_decimal_string_digits(self):
        x = MultiDouble(Fraction(1, 3), 4)
        text = x.to_decimal_string(40)
        assert text.startswith("3.333333333333333333333333333333333333333")
        assert "e-01" in text

    def test_decimal_string_zero(self):
        assert MultiDouble(0.0, 2).to_decimal_string(5).startswith("0.0000")

    def test_decimal_string_negative(self):
        assert MultiDouble(-2.0, 2).to_decimal_string(5).startswith("-2.0000")

    def test_roundtrip_through_string(self):
        x = MultiDouble(Fraction(22, 7), 4)
        y = MultiDouble(x.to_decimal_string(70), 4)
        assert abs((x - y).to_fraction()) < Fraction(1, 2 ** 200)


class TestComplex:
    def test_construction_from_complex(self):
        z = ComplexMultiDouble(1 + 2j, precision=4)
        assert z.real.to_fraction() == 1
        assert z.imag.to_fraction() == 2

    def test_add_mul(self):
        z = ComplexMultiDouble(MultiDouble(1, 4), MultiDouble(2, 4))
        w = ComplexMultiDouble(MultiDouble(3, 4), MultiDouble(-1, 4))
        s = z + w
        assert s.real.to_fraction() == 4 and s.imag.to_fraction() == 1
        p = z * w
        # (1+2i)(3-i) = 5 + 5i
        assert p.real.to_fraction() == 5 and p.imag.to_fraction() == 5

    def test_division_and_conjugate(self):
        z = ComplexMultiDouble(MultiDouble(1, 4), MultiDouble(2, 4))
        w = ComplexMultiDouble(MultiDouble(3, 4), MultiDouble(-1, 4))
        q = (z * w) / w
        assert abs((q.real - 1).to_fraction()) < Fraction(1, 2 ** 190)
        assert abs((q.imag - 2).to_fraction()) < Fraction(1, 2 ** 190)
        assert z.conjugate().imag.to_fraction() == -2

    def test_abs(self):
        z = ComplexMultiDouble(MultiDouble(3, 4), MultiDouble(4, 4))
        assert abs((abs(z) - 5).to_fraction()) < Fraction(1, 2 ** 190)
        assert z.abs2().to_fraction() == 25

    def test_complex_builtin_conversion(self):
        z = ComplexMultiDouble(1.5, -0.5, precision=2)
        assert complex(z) == 1.5 - 0.5j

    def test_equality(self):
        z = ComplexMultiDouble(1.0, 2.0, precision=2)
        assert z == ComplexMultiDouble(1.0, 2.0, precision=2)
        assert z != ComplexMultiDouble(1.0, 2.5, precision=2)


class TestPrecisionRegistry:
    def test_known_names(self):
        assert get_precision("qd").limbs == 4
        assert get_precision(8).name == "8d"
        assert get_precision("double double").limbs == 2

    def test_generic_limb_count(self):
        p = get_precision(3)
        assert p.limbs == 3 and p.name == "3d"

    def test_eps_scaling(self):
        assert get_precision(4).eps < get_precision(2).eps ** 1.9

    def test_unknown_spec_raises(self):
        with pytest.raises(KeyError):
            get_precision("galactic")

    def test_bits(self):
        assert get_precision(2).bits == 105
        assert get_precision(4).bits == 211
