"""Tests for operation tallies, kernel launches and traces."""

from __future__ import annotations

import pytest

from repro.gpu import KernelLaunch, KernelTrace, OperationTally, flop_cost_model


class TestOperationTally:
    def test_flops_with_paper_table1(self):
        tally = OperationTally(additions=2, multiplications=3, divisions=1)
        # quad double: 2*89 + 3*336 + 1*893
        assert tally.flops(4) == 2 * 89 + 3 * 336 + 893

    def test_flops_double_precision(self):
        tally = OperationTally(additions=5, subtractions=5, multiplications=5, divisions=5)
        assert tally.flops(1) == 20

    def test_sqrt_charged_as_division(self):
        tally = OperationTally(square_roots=2)
        assert tally.flops(2) == 2 * 70

    def test_measured_source(self):
        tally = OperationTally(additions=1)
        assert tally.flops(2, source="measured") >= 20

    def test_invalid_source(self):
        with pytest.raises(ValueError):
            flop_cost_model(2, source="guessed")

    def test_axpy_constructors(self):
        real = OperationTally.axpy(10)
        assert real.additions == 10 and real.multiplications == 10
        cplx = OperationTally.complex_axpy(10)
        assert cplx.additions == 40 and cplx.multiplications == 40

    def test_algebra(self):
        a = OperationTally(additions=1, divisions=2)
        b = OperationTally(multiplications=3)
        c = a + b
        assert c.additions == 1 and c.multiplications == 3 and c.divisions == 2
        a += b
        assert a.multiplications == 3
        scaled = b.scaled(2.5)
        assert scaled.multiplications == 7.5

    def test_md_operations_and_empty(self):
        assert OperationTally().is_empty()
        assert OperationTally(additions=2, square_roots=1).md_operations == 3

    def test_as_dict(self):
        d = OperationTally(additions=1, subtractions=2).as_dict()
        assert d["add"] == 1 and d["sub"] == 2


class TestKernelLaunch:
    def test_flops_and_intensity(self):
        launch = KernelLaunch(
            name="k",
            stage="stage",
            blocks=4,
            threads_per_block=128,
            limbs=4,
            tally=OperationTally(additions=100, multiplications=100),
            bytes_read=1000,
            bytes_written=600,
        )
        assert launch.threads == 512
        assert launch.bytes_total == 1600
        assert launch.flops() == 100 * 89 + 100 * 336
        assert launch.arithmetic_intensity == pytest.approx(launch.flops() / 1600)

    def test_zero_bytes_infinite_intensity(self):
        launch = KernelLaunch("k", "s", 1, 32, 2, OperationTally(additions=1))
        assert launch.arithmetic_intensity == float("inf")


class TestKernelTrace:
    def _trace(self):
        trace = KernelTrace("V100", label="unit")
        trace.add(
            "inv",
            "invert diagonal tiles",
            blocks=80,
            threads_per_block=64,
            limbs=4,
            tally=OperationTally(additions=10, multiplications=10, divisions=5),
            bytes_read=800,
            bytes_written=800,
        )
        trace.add(
            "mv",
            "multiply with inverses",
            blocks=1,
            threads_per_block=64,
            limbs=4,
            tally=OperationTally.axpy(64),
            bytes_read=640,
            bytes_written=64,
        )
        trace.launches[0].elapsed_ms = 2.0
        trace.launches[1].elapsed_ms = 1.0
        return trace

    def test_totals(self):
        trace = self._trace()
        assert len(trace) == 2
        assert trace.kernel_launch_count == 2
        expected = (10 * 89 + 10 * 336 + 5 * 893) + 64 * (89 + 336)
        assert trace.total_flops() == expected
        assert trace.total_bytes() == 800 + 800 + 640 + 64
        assert trace.total_md_operations() == 25 + 128

    def test_times_and_rates(self):
        trace = self._trace()
        assert trace.kernel_time_ms() == 3.0
        trace.transfer_ms = 1.5
        trace.host_ms = 0.5
        assert trace.wall_clock_ms() == 5.0
        assert trace.kernel_gigaflops() == pytest.approx(
            trace.total_flops() / 3.0e-3 / 1e9
        )
        assert trace.wall_gigaflops() < trace.kernel_gigaflops()

    def test_zero_time_rates(self):
        trace = KernelTrace("P100")
        assert trace.kernel_gigaflops() == 0.0
        assert trace.wall_gigaflops() == 0.0

    def test_stage_breakdown(self):
        trace = self._trace()
        stages = trace.stages()
        assert stages == ["invert diagonal tiles", "multiply with inverses"]
        summary = trace.stage_summary("invert diagonal tiles")
        assert summary.launches == 1
        assert summary.elapsed_ms == 2.0
        assert summary.gigaflop_rate > 0
        times = trace.stage_times_ms()
        assert times["multiply with inverses"] == 1.0
        tallies = trace.stage_tallies()
        assert tallies["multiply with inverses"].additions == 64

    def test_extend(self):
        a, b = self._trace(), self._trace()
        b.transfer_ms = 2.0
        a.extend(b)
        assert len(a) == 4
        assert a.transfer_ms == 2.0

    def test_device_resolution(self):
        assert KernelTrace("p100").device.multiprocessors == 56

    def test_arithmetic_intensity(self):
        trace = self._trace()
        assert trace.arithmetic_intensity() == pytest.approx(
            trace.total_flops() / trace.total_bytes()
        )
