"""Tests for the occupancy, roofline and memory models."""

from __future__ import annotations

import pytest

from repro.gpu import memory, roofline
from repro.gpu.occupancy import (
    LaunchConfiguration,
    block_efficiency,
    occupancy,
    thread_efficiency,
    wave_count,
)


class TestOccupancy:
    def test_full_occupancy(self):
        config = LaunchConfiguration(blocks=80, threads_per_block=128)
        assert occupancy(config, "V100") == pytest.approx(1.0)

    def test_half_occupancy_for_32_threads_on_v100(self):
        # the paper's explanation of the leftmost outlier in Figure 5
        assert thread_efficiency(32, "V100") == pytest.approx(0.5)
        config = LaunchConfiguration(blocks=80, threads_per_block=32)
        assert occupancy(config, "V100") == pytest.approx(0.5)

    def test_32_threads_saturate_c2050(self):
        # the C2050 has 32 cores per multiprocessor
        assert thread_efficiency(32, "C2050") == pytest.approx(1.0)

    def test_single_block_uses_one_multiprocessor(self):
        assert block_efficiency(1, "V100") == pytest.approx(1.0 / 80.0)

    def test_waves(self):
        assert wave_count(80, "V100") == 1
        assert wave_count(81, "V100") == 2
        assert wave_count(160, "V100") == 2
        assert wave_count(0, "V100") == 0.0

    def test_partial_wave_penalty(self):
        assert block_efficiency(81, "V100") == pytest.approx(81 / 160)
        assert block_efficiency(160, "V100") == pytest.approx(1.0)

    def test_threads_rounded_to_warps(self):
        assert thread_efficiency(33, "V100") == pytest.approx(1.0)
        assert thread_efficiency(1, "V100") == pytest.approx(0.5)

    def test_degenerate_configurations(self):
        assert occupancy(LaunchConfiguration(0, 128), "V100") == 0.0
        assert occupancy(LaunchConfiguration(4, 0), "V100") == 0.0
        assert thread_efficiency(4096, "V100") == 1.0

    def test_more_blocks_never_reduce_occupancy_at_multiples(self):
        effs = [block_efficiency(80 * k, "V100") for k in range(1, 5)]
        assert all(e == pytest.approx(1.0) for e in effs)


class TestRoofline:
    def test_arithmetic_intensity(self):
        assert roofline.arithmetic_intensity(100.0, 50.0) == 2.0
        assert roofline.arithmetic_intensity(1.0, 0.0) == float("inf")

    def test_attainable_follows_roofline(self):
        # memory bound region: bandwidth * intensity
        assert roofline.attainable_gflops(1.0, "V100") == pytest.approx(870.0)
        # compute bound region: peak
        assert roofline.attainable_gflops(100.0, "V100") == pytest.approx(7900.0)
        assert roofline.attainable_gflops(float("inf"), "V100") == pytest.approx(7900.0)

    def test_ridge_point_boundary(self):
        v100_ridge = 7900.0 / 870.0
        assert not roofline.is_compute_bound(v100_ridge * 0.99, "V100")
        assert roofline.is_compute_bound(v100_ridge * 1.01, "V100")

    def test_cgma_example_from_paper(self):
        # one quad double division: 893 double operations on 8 doubles
        # (using the per-operation average of Table 1 as the flop weight,
        # a division alone weighs 893/439.3 of the average)
        ratio = roofline.cgma_ratio(1, 8, 4)
        assert ratio == pytest.approx(439.3 / 8, rel=0.01)

    def test_cgma_grows_with_precision(self):
        ratios = [roofline.cgma_ratio(1, 2 * m, m) for m in (2, 4, 8)]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_cgma_zero_access(self):
        assert roofline.cgma_ratio(1, 0, 4) == float("inf")

    def test_roofline_point_logs(self):
        point = roofline.RooflinePoint("n=32", intensity=10.0, gflops=100.0)
        assert point.log10_intensity == pytest.approx(1.0)
        assert point.log10_gflops == pytest.approx(2.0)

    def test_roofline_table(self):
        points = [
            roofline.RooflinePoint("memory", 1.0, 500.0),
            roofline.RooflinePoint("compute", 100.0, 2000.0),
        ]
        rows = roofline.roofline_table(points, "V100")
        assert rows[0]["compute_bound"] is False
        assert rows[1]["compute_bound"] is True
        assert rows[0]["attainable_gflops"] == pytest.approx(870.0)
        assert 0 < rows[1]["fraction_of_roof"] < 1


class TestMemoryModel:
    def test_md_bytes(self):
        assert memory.md_bytes(10, 4) == 10 * 4 * 8
        assert memory.md_bytes(10, 4, complex_data=True) == 2 * 10 * 4 * 8
        assert memory.matrix_bytes(3, 5, 2) == 3 * 5 * 2 * 8
        assert memory.vector_bytes(7, 8) == 7 * 8 * 8

    def test_transfer_time_scales_linearly(self):
        t1 = memory.transfer_time_ms(1e6, "V100")
        t2 = memory.transfer_time_ms(2e6, "V100")
        assert t2 == pytest.approx(2 * t1)
        assert memory.transfer_time_ms(0, "V100") == 0.0

    def test_host_overhead(self):
        base = memory.host_overhead_ms(1e6, "V100")
        assert base > 0
        assert memory.host_overhead_ms(0, "V100") == 0.0
        swamped = memory.host_overhead_ms(1e6, "V100", oversubscribed=True)
        assert swamped > 10 * base

    def test_host_overhead_faster_host_is_faster(self):
        v100 = memory.host_overhead_ms(1e7, "V100")  # 3.6 GHz host
        p100 = memory.host_overhead_ms(1e7, "P100")  # 2.2 GHz host
        assert v100 < p100
