"""Tests for the device catalog (paper Table 2)."""

from __future__ import annotations

import pytest

from repro.gpu import DEVICES, DeviceSpec, get_device, list_devices


class TestCatalog:
    def test_table2_multiprocessors(self):
        assert DEVICES["C2050"].multiprocessors == 14
        assert DEVICES["K20C"].multiprocessors == 13
        assert DEVICES["P100"].multiprocessors == 56
        assert DEVICES["V100"].multiprocessors == 80
        assert DEVICES["RTX2080"].multiprocessors == 46

    def test_table2_cores(self):
        assert DEVICES["C2050"].cores == 448
        assert DEVICES["K20C"].cores == 2496
        assert DEVICES["P100"].cores == 3584
        assert DEVICES["V100"].cores == 5120
        assert DEVICES["RTX2080"].cores == 2944

    def test_table2_clocks(self):
        assert DEVICES["P100"].clock_ghz == pytest.approx(1.33)
        assert DEVICES["V100"].clock_ghz == pytest.approx(1.91)

    def test_table2_cuda_capabilities(self):
        caps = [d.cuda_capability for d in list_devices()]
        assert caps == ["2.0", "3.5", "6.0", "7.0", "7.5"]

    def test_peaks_from_section_4_3(self):
        assert DEVICES["P100"].peak_double_gflops == pytest.approx(4700.0)
        assert DEVICES["V100"].peak_double_gflops == pytest.approx(7900.0)
        # expected V100/P100 speedup quoted in the paper
        assert DEVICES["V100"].peak_double_gflops / DEVICES["P100"].peak_double_gflops == pytest.approx(1.68, abs=0.01)

    def test_v100_ridge_point(self):
        # the paper computes 7900 / 870 = 9.08
        assert DEVICES["V100"].ridge_point == pytest.approx(9.08, abs=0.01)

    def test_host_ram_asymmetry(self):
        # the P100 host has 256 GB, the V100 host only 32 GB (paper §4.3/4.7)
        assert DEVICES["P100"].host_ram_gb == 256
        assert DEVICES["V100"].host_ram_gb == 32

    def test_list_devices_order(self):
        names = [d.name for d in list_devices()]
        assert names[0].endswith("C2050") and names[-1].endswith("RTX 2080")


class TestLookup:
    def test_lookup_by_key_and_alias(self):
        assert get_device("V100").multiprocessors == 80
        assert get_device("volta v100").multiprocessors == 80
        assert get_device("rtx 2080").cores == 2944

    def test_lookup_passthrough(self):
        spec = DEVICES["P100"]
        assert get_device(spec) is spec

    def test_unknown_device_raises(self):
        with pytest.raises(KeyError):
            get_device("H100")

    def test_with_overrides(self):
        faster = get_device("V100").with_overrides(memory_bandwidth_gb_s=1600.0)
        assert faster.memory_bandwidth_gb_s == 1600.0
        assert faster.multiprocessors == 80
        assert get_device("V100").memory_bandwidth_gb_s == 870.0

    def test_derived_units(self):
        v100 = get_device("V100")
        assert v100.peak_double_flops == pytest.approx(7.9e12)
        assert v100.memory_bandwidth_bytes_s == pytest.approx(8.7e11)
        assert v100.pcie_bandwidth_bytes_s > 0
