"""The ``python -m repro.analysis`` command line, end to end.

A throwaway tree seeded with one real violation drives the CI-gate
contract: ``check`` exits 1 and reports it (text and JSON), a
``baseline`` run grandfathers it back to exit 0, adding a *new*
violation past the baseline fails again, ``--rule`` restricts the rule
set, and ``explain`` prints the contract of a known rule (exit 2 for
an unknown one).
"""

from __future__ import annotations

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import main

#: An inline NumPy import in repro.md — the canonical seeded violation.
_VIOLATION = """\
def renormalize(limbs):
    import numpy as np
    return np.sort(limbs)
"""


@pytest.fixture
def seeded_tree(tmp_path):
    """A scan root holding one backend-purity violation."""
    package = tmp_path / "src" / "repro" / "md"
    package.mkdir(parents=True)
    (package / "bad.py").write_text(_VIOLATION)
    return tmp_path


def _run(seeded_tree, *arguments):
    stdout = io.StringIO()
    root = str(seeded_tree / "src")
    baseline = str(seeded_tree / "analysis_baseline.json")
    command, rest = arguments[0], list(arguments[1:])
    argv = [command, "--root", root, "--baseline", baseline, *rest]
    return main(argv, stdout=stdout), stdout.getvalue()


def test_check_fails_on_a_seeded_violation(seeded_tree):
    status, output = _run(seeded_tree, "check")
    assert status == 1
    assert "backend-purity" in output
    assert "1 new finding(s)" in output


def test_json_report_carries_the_finding(seeded_tree):
    status, output = _run(seeded_tree, "check", "--format", "json")
    assert status == 1
    document = json.loads(output)
    assert document["counts"] == {"new": 1, "grandfathered": 0}
    (finding,) = document["new"]
    assert finding["rule"] == "backend-purity"
    assert finding["path"].endswith("bad.py")


def test_baseline_grandfathers_the_violation(seeded_tree):
    status, output = _run(seeded_tree, "baseline")
    assert status == 0
    assert "baselined 1 finding(s)" in output
    status, output = _run(seeded_tree, "check")
    assert status == 0
    assert "clean: no findings (1 grandfathered by the baseline)" in output


def test_new_violation_past_the_baseline_fails_again(seeded_tree):
    _run(seeded_tree, "baseline")
    worse = seeded_tree / "src" / "repro" / "md" / "worse.py"
    worse.write_text(_VIOLATION)
    status, output = _run(seeded_tree, "check")
    assert status == 1
    assert "worse.py" in output


def test_rule_filter_restricts_the_run(seeded_tree):
    status, _output = _run(seeded_tree, "check", "--rule", "determinism")
    assert status == 0


def test_clean_tree_checks_clean(tmp_path):
    package = tmp_path / "src" / "repro" / "md"
    package.mkdir(parents=True)
    (package / "good.py").write_text("def identity(x):\n    return x\n")
    status, output = _run(tmp_path, "check")
    assert status == 0
    assert "clean: no findings" in output


def test_explain_prints_the_contract():
    stdout = io.StringIO()
    assert main(["explain", "backend-purity"], stdout=stdout) == 0
    output = stdout.getvalue()
    assert "xp handle" in output
    assert "XP_BOUNDARY_MODULES" in output


def test_explain_unknown_rule_exits_two():
    stdout = io.StringIO()
    assert main(["explain", "no-such-rule"], stdout=stdout) == 2
    assert "known rules:" in stdout.getvalue()


def test_module_entry_point_exits_nonzero(seeded_tree):
    """``python -m repro.analysis`` is wired to the same gate CI runs."""
    src = Path(__file__).resolve().parents[2] / "src"
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "check",
            "--root",
            str(seeded_tree / "src"),
            "--baseline",
            str(seeded_tree / "analysis_baseline.json"),
        ],
        capture_output=True,
        text=True,
        cwd=str(seeded_tree),
        env={"PYTHONPATH": str(src), "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )
    assert completed.returncode == 1
    assert "backend-purity" in completed.stdout
