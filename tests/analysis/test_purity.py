"""Fixture corpus of the ``backend-purity`` rule.

One bad/good snippet pair per failure mode: inline function-body NumPy
imports are always flagged inside the pure packages, module-level
imports are flagged outside the sanctioned ``XP_BOUNDARY_MODULES``
whitelist, and code routing through :mod:`repro.md.dispatch` or living
outside the scoped packages passes.
"""

from __future__ import annotations

from repro.analysis import check_source
from repro.analysis.purity import PURE_PACKAGES, XP_BOUNDARY_MODULES

RULE = "backend-purity"


def _findings(source, path):
    return check_source(source, path=path, rules=[RULE])


BAD_INLINE = """\
def renormalize(limbs):
    import numpy as np
    return np.sort(limbs)
"""

GOOD_DISPATCH = """\
from .dispatch import array_module


def renormalize(limbs):
    xp = array_module()
    return xp.sort(limbs)
"""


def test_inline_import_in_md_is_flagged():
    (finding,) = _findings(BAD_INLINE, "src/repro/md/example.py")
    assert finding.rule == RULE
    assert finding.line == 2
    assert "inline `import numpy` inside renormalize()" in finding.message


def test_dispatch_routed_md_code_passes():
    assert _findings(GOOD_DISPATCH, "src/repro/md/example.py") == []


def test_inline_from_import_is_flagged():
    source = "def f(x):\n    from numpy.linalg import qr\n    return qr(x)\n"
    (finding,) = _findings(source, "src/repro/batch/example.py")
    assert "numpy.linalg" in finding.message


def test_module_level_import_outside_whitelist_is_flagged():
    (finding,) = _findings("import numpy as np\n", "src/repro/series/example.py")
    assert "not a sanctioned xp boundary site" in finding.message


def test_module_level_import_in_whitelisted_module_passes():
    assert "repro.series.pade" in XP_BOUNDARY_MODULES
    assert _findings("import numpy as np\n", "src/repro/series/pade.py") == []


def test_md_has_no_sanctioned_modules():
    assert not any(name.startswith("repro.md") for name in XP_BOUNDARY_MODULES)


def test_inline_import_in_whitelisted_module_still_flagged():
    # the whitelist sanctions the module-level boundary only; function
    # bodies must still route through the xp handle
    (finding,) = _findings(BAD_INLINE, "src/repro/series/pade.py")
    assert "inline" in finding.message


def test_packages_outside_the_scope_pass():
    assert "repro.perf" not in PURE_PACKAGES
    assert _findings("import numpy as np\n", "src/repro/perf/example.py") == []


def test_non_numpy_imports_pass():
    source = "def f(x):\n    import math\n    return math.sqrt(x)\n"
    assert _findings(source, "src/repro/md/example.py") == []
