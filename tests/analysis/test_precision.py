"""Fixture corpus of the ``precision-loss`` rule.

Bad snippets cast tainted limb values (annotated parameters, ``self``
in limb classes, constructor-assigned locals, limb-returning calls) to
``float``/``complex``; good twins keep the value in limb form, cast
untainted doubles, or sit inside a ``to_float``-family boundary whose
whole contract is the rounding.
"""

from __future__ import annotations

from repro.analysis import check_source

RULE = "precision-loss"
PATH = "src/repro/md/example.py"


def _findings(source, path=PATH):
    return check_source(source, path=path, rules=[RULE])


def test_cast_of_annotated_parameter_is_flagged():
    source = """\
def magnitude_of(value: MultiDouble):
    return float(value)
"""
    (finding,) = _findings(source)
    assert finding.rule == RULE
    assert "limb value `value`" in finding.message


def test_cast_of_self_plane_in_limb_class_is_flagged():
    source = """\
class MDArray:
    def head(self):
        return float(self.data[0])
"""
    (finding,) = _findings(source, "src/repro/vec/example.py")
    assert "rooted at `self`" in finding.message


def test_cast_of_constructor_local_is_flagged():
    source = """\
def observed(a, b):
    total = MultiDouble(a, b)
    return float(total)
"""
    (finding,) = _findings(source)
    assert "limb value `total`" in finding.message


def test_cast_of_limb_returning_call_is_flagged():
    source = """\
def endpoint(series, point):
    return float(series.evaluate(point))
"""
    (finding,) = _findings(source, "src/repro/series/example.py")
    assert ".evaluate()" in finding.message


def test_complex_cast_is_flagged_too():
    source = """\
def as_builtin(value: ComplexMultiDouble):
    return complex(value)
"""
    (finding,) = _findings(source)
    assert "complex() on limb value" in finding.message


def test_cast_through_abs_and_negation_is_flagged():
    # abs()/unary minus are transparent: the limbs still drown
    source = """\
def residual_size(value: MultiDouble):
    return float(abs(-value))
"""
    assert len(_findings(source)) == 1


def test_boundary_methods_may_round():
    source = """\
class MultiDouble:
    def to_float(self):
        return float(self.limbs[0])

    def __float__(self):
        return float(self.limbs[0])
"""
    assert _findings(source) == []


def test_untainted_double_cast_passes():
    source = """\
def widen(x):
    return float(x)
"""
    assert _findings(source) == []


def test_allow_comment_documents_a_deliberate_read():
    source = """\
def condition_estimate(value: MultiDouble):
    # repro: allow[precision-loss]
    return float(value)
"""
    assert _findings(source) == []


def test_packages_outside_the_scope_pass():
    source = """\
def plot_point(value: MultiDouble):
    return float(value)
"""
    assert _findings(source, "src/repro/obs/example.py") == []
