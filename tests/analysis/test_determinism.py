"""Fixture corpus of the ``determinism`` rule.

Bad snippets read the wall clock, the global RNG or set iteration
order inside numeric packages; good twins seed their generators
explicitly, pin set order with ``sorted``, or live in
:mod:`repro.obs`, which owns wall-clock measurement by design.
"""

from __future__ import annotations

from repro.analysis import check_source

RULE = "determinism"
PATH = "src/repro/series/example.py"


def _findings(source, path=PATH):
    return check_source(source, path=path, rules=[RULE])


def test_wall_clock_imports_are_flagged():
    findings = _findings("import time\nfrom datetime import datetime\n")
    assert len(findings) == 2
    assert all("wall-clock" in finding.message for finding in findings)


def test_stdlib_random_import_is_flagged():
    (finding,) = _findings("import random\n")
    assert "global RNG state" in finding.message


def test_legacy_np_random_call_is_flagged():
    source = """\
def perturb(n):
    return np.random.rand(n)
"""
    (finding,) = _findings(source)
    assert "legacy global-state `np.random.rand`" in finding.message


def test_unseeded_default_rng_is_flagged():
    source = """\
def gamma():
    return np.random.default_rng().random()
"""
    (finding,) = _findings(source)
    assert "without a seed" in finding.message


def test_seeded_default_rng_passes():
    source = """\
def gamma(seed):
    return np.random.default_rng(seed).random()
"""
    assert _findings(source) == []


def test_set_iteration_is_flagged():
    source = """\
def walk(items):
    for item in set(items):
        yield item
"""
    (finding,) = _findings(source)
    assert "no defined order" in finding.message


def test_set_to_list_conversion_and_comprehension_are_flagged():
    source = """\
def orders(items):
    values = list({1, 2, 3})
    return [x for x in set(items)] + values
"""
    assert len(_findings(source)) == 2


def test_sorted_set_iteration_passes():
    source = """\
def walk(items):
    for item in sorted(set(items)):
        yield item
"""
    assert _findings(source) == []


def test_obs_may_read_the_wall_clock():
    assert _findings("import time\n", path="src/repro/obs/example.py") == []
