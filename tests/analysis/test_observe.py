"""Fixture corpus of the ``observe-only`` rule.

Inward direction: :mod:`repro.obs` code mutating a function parameter
(assignment, augmented update, deletion, mutator call) is flagged;
mutating its own ``self`` state or locals passes.  Outward direction:
numeric code importing anything from ``repro.obs`` that is not a
NullRecorder-guarded seam is flagged; the sanctioned seams pass.
"""

from __future__ import annotations

from repro.analysis import check_source
from repro.analysis.observe import OBS_SEAMS

RULE = "observe-only"
OBS_PATH = "src/repro/obs/example.py"
NUMERIC_PATH = "src/repro/core/example.py"


def _findings(source, path):
    return check_source(source, path=path, rules=[RULE])


def test_obs_assigning_into_a_parameter_is_flagged():
    source = """\
def consume(record):
    record.fields["touched"] = True
"""
    (finding,) = _findings(source, OBS_PATH)
    assert finding.rule == RULE
    assert "assigns into state of parameter `record`" in finding.message


def test_obs_mutator_call_on_a_parameter_is_flagged():
    source = """\
def consume(record):
    record.launches.append(1)
"""
    (finding,) = _findings(source, OBS_PATH)
    assert "mutating `.append()` on parameter `record`" in finding.message


def test_obs_augmented_update_and_delete_are_flagged():
    source = """\
def consume(record):
    record.count += 1
    del record.fields["gone"]
"""
    findings = _findings(source, OBS_PATH)
    assert len(findings) == 2
    assert any("updates" in finding.message for finding in findings)
    assert any("deletes" in finding.message for finding in findings)


def test_obs_owning_its_state_passes():
    source = """\
class Sink:
    def __init__(self):
        self.seen = []

    def consume(self, record):
        self.seen.append(record.name)
        names = []
        names.append(record.name)
        return names
"""
    assert _findings(source, OBS_PATH) == []


def test_numeric_import_of_a_guarded_seam_passes():
    assert "profiled" in OBS_SEAMS
    source = "from ..obs.profile import profiled\n"
    assert _findings(source, NUMERIC_PATH) == []


def test_numeric_import_of_recorder_internals_is_flagged():
    source = "from ..obs.events import RecordStore\n"
    (finding,) = _findings(source, NUMERIC_PATH)
    assert "`RecordStore` (from repro.obs.events)" in finding.message


def test_numeric_plain_module_import_is_flagged():
    (finding,) = _findings("import repro.obs.events\n", NUMERIC_PATH)
    assert "unchecked access" in finding.message


def test_obs_internals_may_import_each_other():
    source = "from .events import RecordStore\n"
    assert _findings(source, OBS_PATH) == []
