"""Fixture corpus of the ``accounting-parity`` rule.

A miniature costmodel/driver pair exercises all four directions of the
contract: a profiled driver without a ``COSTMODEL_TWINS`` entry, a
stale registry key without a driver, a registry value that is not a
costmodel function, and an exported ``*_trace`` that is nobody's twin
— plus the consistent good twin where drivers (both ``@profiled`` and
directly-opened ``category="run"`` spans) and registry agree exactly.
"""

from __future__ import annotations

from repro.analysis import check_modules, parse_source
from repro.analysis.parity import COSTMODEL_MODULE, TWINS_NAME

RULE = "accounting-parity"

GOOD_COSTMODEL = """\
__all__ = ["qr_trace", "fleet_trace", "COSTMODEL_TWINS"]


def qr_trace(n):
    return n


def fleet_trace(n):
    return n


COSTMODEL_TWINS = {
    "blocked_qr": qr_trace,
    "fleet_run": fleet_trace,
}
"""

GOOD_DRIVER = """\
from ..obs.profile import profiled


@profiled("blocked_qr")
def blocked_qr(matrix):
    return matrix


def run_fleet(recorder):
    with recorder.span("fleet_run", category="run"):
        return None
"""


def _check(costmodel=GOOD_COSTMODEL, driver=GOOD_DRIVER):
    modules = [
        parse_source(
            costmodel, path="src/repro/perf/costmodel.py", module=COSTMODEL_MODULE
        ),
        parse_source(
            driver, path="src/repro/core/example.py", module="repro.core.example"
        ),
    ]
    return check_modules(modules, rules=[RULE])


def test_matched_drivers_and_twins_pass():
    assert _check() == []


def test_profiled_driver_without_twin_is_flagged():
    driver = GOOD_DRIVER + """\


@profiled("untwinned_solve")
def solve(matrix):
    return matrix
"""
    (finding,) = _check(driver=driver)
    assert finding.rule == RULE
    assert finding.path == "src/repro/core/example.py"
    assert "'untwinned_solve' has no analytic twin" in finding.message


def test_direct_run_span_counts_as_a_driver():
    driver = GOOD_DRIVER.replace('"fleet_run"', '"unregistered_run"')
    findings = _check(driver=driver)
    messages = "\n".join(finding.message for finding in findings)
    assert "'unregistered_run' has no analytic twin" in messages
    assert "'fleet_run' matches no @profiled driver" in messages


def test_stale_twin_is_flagged():
    costmodel = GOOD_COSTMODEL.replace('"blocked_qr": qr_trace', '"gone": qr_trace')
    findings = _check(costmodel=costmodel)
    messages = "\n".join(finding.message for finding in findings)
    assert "'gone' matches no @profiled driver" in messages
    assert "'blocked_qr' has no analytic twin" in messages


def test_twin_value_must_be_a_costmodel_function():
    costmodel = GOOD_COSTMODEL.replace(
        '"blocked_qr": qr_trace', '"blocked_qr": missing_trace'
    )
    messages = "\n".join(finding.message for finding in _check(costmodel=costmodel))
    assert "points at 'missing_trace'" in messages
    # and the twin it abandoned is now dead model code
    assert "'qr_trace' is exported but is no driver's twin" in messages


def test_exported_trace_without_driver_is_dead_model_code():
    costmodel = GOOD_COSTMODEL.replace(
        '"qr_trace", "fleet_trace"', '"qr_trace", "fleet_trace", "orphan_trace"'
    ) + """\


def orphan_trace(n):
    return n
"""
    (finding,) = _check(costmodel=costmodel)
    assert "'orphan_trace' is exported but is no driver's twin" in finding.message


def test_missing_registry_is_one_hard_finding():
    costmodel = "def qr_trace(n):\n    return n\n"
    (finding,) = _check(costmodel=costmodel)
    assert f"defines no {TWINS_NAME} registry" in finding.message


def test_partial_scan_without_costmodel_judges_nothing():
    module = parse_source(
        GOOD_DRIVER, path="src/repro/core/example.py", module="repro.core.example"
    )
    assert check_modules([module], rules=[RULE]) == []
