"""Meta-test: the committed source tree satisfies its own invariants.

Runs the full rule set over the live ``src/`` tree against the
committed ``analysis_baseline.json`` — exactly what CI's
static-analysis job executes — and asserts no new findings.  A
failure here is a real contract regression (or a legitimate new
boundary that needs an ``# repro: allow[...]`` with its rationale, or
a deliberate regeneration of the baseline).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    check_tree,
    load_baseline,
)

REPO = Path(__file__).resolve().parents[2]
BASELINE = REPO / "analysis_baseline.json"


def test_live_tree_is_clean_against_the_committed_baseline():
    findings = check_tree(REPO / "src")
    new, _grandfathered = apply_baseline(findings, load_baseline(BASELINE))
    assert new == [], "new invariant violations:\n" + "\n".join(
        str(finding) for finding in new
    )


def test_committed_baseline_is_current_schema_and_empty():
    document = json.loads(BASELINE.read_text())
    assert document["schema"] == BASELINE_SCHEMA_VERSION
    # the tree starts fully clean: nothing is grandfathered.  If a rule
    # tightens later, regenerate via `python -m repro.analysis baseline`
    # and this assertion documents the debt by failing.
    assert document["findings"] == {}
