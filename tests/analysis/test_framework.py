"""The linter framework: suppressions, baseline, cache, reports.

Pins the :mod:`repro.analysis.core` machinery every rule family rides
on: ``# repro: allow[...]`` comments suppress on the flagged line or a
comment-only line directly above (and nowhere else), the baseline
round-trips through its JSON file and grandfathers by fingerprint
*count*, the per-file parse cache hands every checker the same parse
until the file changes, and both report renderers carry the findings.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    check_source,
    load_baseline,
    parse_module,
    parse_source,
    registered_checkers,
    render_json_report,
    render_text_report,
    write_baseline,
)

#: A snippet violating backend-purity (module-level NumPy import in a
#: non-whitelisted repro.vec module) used to exercise the framework.
_VIOLATION = "import numpy as np\n"
_PATH = "src/repro/vec/example.py"


def _findings(source, path=_PATH):
    return check_source(source, path=path, rules=["backend-purity"])


class TestRegistry:
    def test_all_six_rule_families_registered(self):
        rules = {checker.rule for checker in registered_checkers()}
        assert rules == {
            "backend-purity",
            "precision-loss",
            "observe-only",
            "determinism",
            "export-consistency",
            "accounting-parity",
        }

    def test_every_checker_documents_itself(self):
        for checker in registered_checkers():
            assert checker.contract, checker.rule
            assert checker.explanation.strip(), checker.rule


class TestModuleScoping:
    def test_path_maps_to_dotted_module(self):
        module = parse_source("x = 1\n", path="src/repro/md/example.py")
        assert module.module == "repro.md.example"
        assert not module.is_package

    def test_package_init_resolves_from_itself(self):
        module = parse_source(
            "from . import report\n", path="src/repro/obs/__init__.py"
        )
        assert module.module == "repro.obs"
        assert module.is_package
        node = module.tree.body[0]
        assert module.resolve_import(node) == "repro.obs"

    def test_plain_module_resolves_from_parent(self):
        module = parse_source(
            "from ..obs.profile import profiled\n",
            path="src/repro/core/example.py",
        )
        node = module.tree.body[0]
        assert module.resolve_import(node) == "repro.obs.profile"


class TestSuppression:
    def test_violation_is_flagged(self):
        assert len(_findings(_VIOLATION)) == 1

    def test_allow_on_the_flagged_line(self):
        source = "import numpy as np  # repro: allow[backend-purity]\n"
        assert _findings(source) == []

    def test_allow_on_a_comment_line_above(self):
        source = (
            "# repro: allow[backend-purity]\n"
            "import numpy as np\n"
        )
        assert _findings(source) == []

    def test_allow_star_suppresses_every_rule(self):
        source = "import numpy as np  # repro: allow[*]\n"
        assert _findings(source) == []

    def test_wrong_rule_id_does_not_suppress(self):
        source = "import numpy as np  # repro: allow[determinism]\n"
        assert len(_findings(source)) == 1

    def test_allow_trailing_a_code_line_above_does_not_suppress(self):
        # only a comment-only line above counts; a code line carrying the
        # comment suppresses that line, not its neighbours
        source = (
            "x = 1  # repro: allow[backend-purity]\n"
            "import numpy as np\n"
        )
        assert len(_findings(source)) == 1

    def test_allow_two_lines_above_does_not_suppress(self):
        source = (
            "# repro: allow[backend-purity]\n"
            "\n"
            "import numpy as np\n"
        )
        assert len(_findings(source)) == 1


class TestBaseline:
    def test_round_trip(self, tmp_path):
        findings = _findings(_VIOLATION)
        path = tmp_path / "baseline.json"
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert baseline == {findings[0].fingerprint: 1}
        new, grandfathered = apply_baseline(findings, baseline)
        assert new == []
        assert grandfathered == findings

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}

    def test_schema_mismatch_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"schema": 999, "findings": {}}))
        with pytest.raises(ValueError, match="schema"):
            load_baseline(path)

    def test_new_finding_not_grandfathered(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, _findings(_VIOLATION))
        # same file, a second distinct violation appears
        grown = _VIOLATION + "import numpy.linalg\n"
        new, grandfathered = apply_baseline(_findings(grown), load_baseline(path))
        assert len(grandfathered) == 1
        assert len(new) == 1
        assert "numpy.linalg" in new[0].message

    def test_counts_grandfather_per_occurrence(self):
        # two findings sharing a fingerprint against a count of one:
        # exactly one passes, the second is new
        findings = _findings(_VIOLATION)
        assert len(findings) == 1
        baseline = {findings[0].fingerprint: 1}
        new, grandfathered = apply_baseline(findings + findings, baseline)
        assert len(grandfathered) == 1
        assert len(new) == 1

    def test_fingerprint_ignores_line_numbers(self):
        shifted = "\n\n\n" + _VIOLATION
        original = _findings(_VIOLATION)[0]
        moved = _findings(shifted)[0]
        assert moved.line != original.line
        assert moved.fingerprint == original.fingerprint


class TestParseCache:
    def test_same_state_parses_once(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text("x = 1\n")
        first = parse_module(path, tmp_path)
        second = parse_module(path, tmp_path)
        assert first is second

    def test_modified_file_reparses(self, tmp_path):
        path = tmp_path / "module.py"
        path.write_text("x = 1\n")
        first = parse_module(path, tmp_path)
        path.write_text("x = 1\ny = 2\n")
        second = parse_module(path, tmp_path)
        assert first is not second
        assert "y = 2" in second.source


class TestReports:
    def test_text_report_carries_the_findings(self):
        findings = _findings(_VIOLATION)
        report = render_text_report(findings)
        assert "backend-purity" in report
        assert f"{_PATH}:1" in report
        assert "1 new finding(s)" in report

    def test_clean_text_report(self):
        report = render_text_report([], grandfathered=_findings(_VIOLATION))
        assert "clean: no findings" in report
        assert "1 grandfathered" in report

    def test_json_report_round_trips(self):
        findings = _findings(_VIOLATION)
        document = json.loads(render_json_report(findings, findings))
        assert document["schema"] == BASELINE_SCHEMA_VERSION
        assert document["counts"] == {"new": 1, "grandfathered": 1}
        (entry,) = document["new"]
        assert entry["rule"] == "backend-purity"
        assert entry["fingerprint"] == findings[0].fingerprint
