"""Test package marker (keeps module names unique for standalone runs)."""
