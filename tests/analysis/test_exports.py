"""Fixture corpus of the ``export-consistency`` rule.

Miniature two-module packages exercise every failure mode of a PEP 562
lazy table — an ``__all__`` entry nothing defines, a lazy name missing
from ``__all__``, a lazy target pointing at a module or attribute that
does not exist — plus a fully consistent good twin, the
``if name == ...`` branch shape, and the pass for targets outside the
scanned namespace (stdlib/third-party).
"""

from __future__ import annotations

from repro.analysis import check_modules, parse_source

RULE = "export-consistency"

IMPL = """\
def lazy_fn():
    return 1
"""


def _check(*sources):
    modules = [
        parse_source(source, path=path, module=module)
        for source, path, module in sources
    ]
    return check_modules(modules, rules=[RULE])


def _package(init_source):
    return (
        (init_source, "src/repro/demo/__init__.py", "repro.demo"),
        (IMPL, "src/repro/demo/impl.py", "repro.demo.impl"),
    )


GOOD_INIT = """\
__all__ = ["helper", "lazy_fn"]


def helper():
    return 0


def __getattr__(name):
    table = {"lazy_fn": ("repro.demo.impl", "lazy_fn")}
    if name in table:
        import importlib

        module_name, attr = table[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(name)
"""


def test_consistent_table_passes():
    assert _check(*_package(GOOD_INIT)) == []


def test_unresolved_all_entry_is_flagged():
    init = GOOD_INIT.replace('"helper", "lazy_fn"', '"helper", "lazy_fn", "ghost"')
    (finding,) = _check(*_package(init))
    assert finding.rule == RULE
    assert "__all__ exports 'ghost'" in finding.message


def test_duplicate_all_entry_is_flagged():
    init = GOOD_INIT.replace('"helper", "lazy_fn"', '"helper", "helper", "lazy_fn"')
    (finding,) = _check(*_package(init))
    assert "duplicate __all__ entry 'helper'" in finding.message


def test_lazy_name_missing_from_all_is_flagged():
    init = GOOD_INIT.replace('"helper", "lazy_fn"', '"helper"')
    (finding,) = _check(*_package(init))
    assert "missing from __all__" in finding.message


def test_lazy_target_attribute_must_exist():
    init = GOOD_INIT.replace('"lazy_fn")}', '"renamed_fn")}')
    (finding,) = _check(*_package(init))
    assert "repro.demo.impl.renamed_fn" in finding.message
    assert "not defined there" in finding.message


def test_lazy_target_module_must_exist_in_scanned_tree():
    init = GOOD_INIT.replace('"repro.demo.impl"', '"repro.demo.ghost"')
    (finding,) = _check(*_package(init))
    assert "targets 'repro.demo.ghost'" in finding.message


def test_targets_outside_the_scanned_namespace_pass():
    init = GOOD_INIT.replace('"repro.demo.impl"', '"importlib.metadata"').replace(
        '"lazy_fn")}', '"version")}'
    )
    assert _check(*_package(init)) == []


def test_equality_branch_table_shape_is_recognized():
    init = """\
__all__ = ["lazy_fn"]


def __getattr__(name):
    if name == "lazy_fn":
        from .impl import lazy_fn

        return lazy_fn
    raise AttributeError(name)
"""
    assert _check(*_package(init)) == []
    broken = init.replace("from .impl import lazy_fn", "from .impl import lazy_fn2")
    findings = _check(*_package(broken))
    assert findings  # lazy_fn no longer resolves through the branch
