"""Tests for Algorithm 2 (blocked Householder QR) and the WY helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import stages
from repro.core.baseline import unblocked_householder_qr
from repro.core.blocked_qr import blocked_qr
from repro.core.householder import householder_vector
from repro.core.wy import accumulate_wy, wy_product
from repro.vec import MDArray, MDComplexArray, linalg
from repro.vec import random as mdrandom


def orthogonality_error(Q):
    gram = linalg.matmul(linalg.conjugate_transpose(Q), Q)
    if isinstance(Q, MDComplexArray):
        return np.max(np.abs(gram.to_complex() - np.eye(Q.shape[0])))
    return np.max(np.abs(gram.to_double() - np.eye(Q.shape[0])))


def factorization_error(A, Q, R):
    diff = linalg.matmul(Q, R) - A
    return linalg.max_abs_entry(diff)


class TestWY:
    def test_wy_matches_reflector_product(self, rng):
        a = mdrandom.random_matrix(8, 3, 2, rng)
        vectors, betas = [], []
        work = a.copy()
        for l in range(3):
            v, beta, _ = householder_vector(work[l:, l])
            padded = MDArray.zeros((8,), 2)
            padded[l:] = v
            vectors.append(padded)
            betas.append(beta)
            from repro.core.householder import apply_reflector_left

            work[l:, l:] = apply_reflector_left(work[l:, l:], v, beta)
        W, Y = accumulate_wy(vectors, betas)
        # P = P1 P2 P3 = I + W Y^T
        from repro.core.householder import reflector_matrix

        P = linalg.identity(8, 2)
        for v, beta in zip(vectors, betas):
            P = linalg.matmul(P, reflector_matrix(v, beta))
        wy = linalg.identity(8, 2) + linalg.matmul(W, linalg.conjugate_transpose(Y))
        assert np.max(np.abs(P.to_double() - wy.to_double())) < 1e-28

    def test_wy_product_shape_and_trace(self, rng):
        from repro.gpu import KernelTrace

        vectors = [mdrandom.random_vector(6, 2, rng) for _ in range(2)]
        betas = [MDArray.from_double(np.asarray(0.5), 2).reshape(()) for _ in range(2)]
        trace = KernelTrace("V100")
        W, Y = accumulate_wy(vectors, betas, trace=trace, threads_per_block=4)
        ywt = wy_product(W, Y, trace=trace, threads_per_block=4)
        assert W.shape == (6, 2) and Y.shape == (6, 2) and ywt.shape == (6, 6)
        assert stages.STAGE_COMPUTE_W in trace.stages()
        assert stages.STAGE_YWT in trace.stages()

    def test_accumulate_validation(self, rng):
        v = mdrandom.random_vector(4, 2, rng)
        beta = MDArray.from_double(np.asarray(1.0), 2).reshape(())
        with pytest.raises(ValueError):
            accumulate_wy([], [])
        with pytest.raises(ValueError):
            accumulate_wy([v], [beta, beta])
        with pytest.raises(ValueError):
            accumulate_wy([v, mdrandom.random_vector(5, 2, rng)], [beta, beta])


class TestBlockedQRReal:
    @pytest.mark.parametrize("dim,tile", [(16, 4), (24, 8), (12, 12), (20, 5)])
    def test_factorization_and_orthogonality_dd(self, dim, tile, rng):
        a = mdrandom.random_matrix(dim, dim, 2, rng)
        result = blocked_qr(a, tile)
        assert orthogonality_error(result.Q) < dim * 1e-29
        assert factorization_error(a, result.Q, result.R) < dim * 1e-29
        assert np.max(np.abs(np.tril(result.R.to_double(), -1))) == 0.0

    def test_higher_precisions(self, rng):
        for limbs, tol in ((4, 1e-60), (8, 1e-110)):
            a = mdrandom.random_matrix(8, 8, limbs, rng)
            result = blocked_qr(a, 4)
            assert orthogonality_error(result.Q) < tol
            assert factorization_error(a, result.Q, result.R) < tol

    def test_rectangular_matrix(self, rng):
        a = mdrandom.random_matrix(20, 8, 2, rng)
        result = blocked_qr(a, 4)
        assert result.Q.shape == (20, 20)
        assert result.R.shape == (20, 8)
        assert orthogonality_error(result.Q) < 1e-28
        assert factorization_error(a, result.Q, result.R) < 1e-28

    def test_agrees_with_unblocked_baseline(self, rng):
        a = mdrandom.random_matrix(12, 12, 2, rng)
        blocked = blocked_qr(a, 4)
        Qu, Ru, _ = unblocked_householder_qr(a)
        # R is unique up to column signs; compare magnitudes
        assert np.allclose(
            np.abs(blocked.R.to_double()), np.abs(Ru.to_double()), atol=1e-25
        )

    def test_agrees_with_numpy_in_double(self, rng):
        a = mdrandom.random_matrix(10, 10, 2, rng)
        result = blocked_qr(a, 5)
        _, r_np = np.linalg.qr(a.to_double())
        assert np.allclose(np.abs(result.R.to_double()[:10]), np.abs(r_np), atol=1e-12)

    def test_diagonal_of_r_nonzero(self, rng):
        a = mdrandom.random_matrix(16, 16, 2, rng)
        result = blocked_qr(a, 4)
        assert np.min(np.abs(np.diag(result.R.to_double()))) > 1e-6

    def test_identity_input(self):
        eye = linalg.identity(6, 2)
        result = blocked_qr(eye, 3)
        assert factorization_error(eye, result.Q, result.R) < 1e-30

    def test_input_validation(self, rng):
        with pytest.raises(ValueError):
            blocked_qr(mdrandom.random_vector(4, 2, rng), 2)
        with pytest.raises(ValueError):
            blocked_qr(mdrandom.random_matrix(4, 6, 2, rng), 2)
        with pytest.raises(ValueError):
            blocked_qr(mdrandom.random_matrix(6, 6, 2, rng), 4)
        with pytest.raises(ValueError):
            blocked_qr(mdrandom.random_matrix(6, 6, 2, rng), 0)


class TestBlockedQRComplex:
    def test_factorization_and_unitarity(self, rng):
        a = mdrandom.random_complex_matrix(12, 12, 2, rng)
        result = blocked_qr(a, 4)
        assert orthogonality_error(result.Q) < 1e-28
        diff = linalg.matmul(result.Q, result.R) - a
        assert np.max(np.abs(diff.to_complex())) < 1e-28

    def test_r_is_upper_triangular(self, rng):
        a = mdrandom.random_complex_matrix(9, 9, 2, rng)
        result = blocked_qr(a, 3)
        assert np.max(np.abs(np.tril(result.R.to_complex(), -1))) == 0.0

    def test_quad_double_complex(self, rng):
        a = mdrandom.random_complex_matrix(6, 6, 4, rng)
        result = blocked_qr(a, 3)
        diff = linalg.matmul(result.Q, result.R) - a
        assert np.max(np.abs(diff.to_complex())) < 1e-58


class TestTraceStructure:
    def test_stage_names_match_paper_legend(self, rng):
        a = mdrandom.random_matrix(12, 12, 2, rng)
        result = blocked_qr(a, 4)
        observed = result.trace.stages()
        assert set(observed) == set(stages.QR_STAGES)
        # the trailing-update stages only appear when there is more than one tile
        single = blocked_qr(mdrandom.random_matrix(8, 8, 2, rng), 8)
        assert stages.STAGE_YWTC not in single.trace.stages()
        assert stages.STAGE_R_ADD not in single.trace.stages()

    def test_launch_counts_per_stage(self, rng):
        dim, tile = 12, 4
        tiles = dim // tile
        a = mdrandom.random_matrix(dim, dim, 2, rng)
        trace = blocked_qr(a, tile).trace
        per_stage = {s: 0 for s in stages.QR_STAGES}
        for launch in trace.launches:
            per_stage[launch.stage] += 1
        assert per_stage[stages.STAGE_BETA_V] == dim
        assert per_stage[stages.STAGE_BETA_RTV] == dim
        assert per_stage[stages.STAGE_UPDATE_R] == dim
        assert per_stage[stages.STAGE_COMPUTE_W] == dim
        assert per_stage[stages.STAGE_YWT] == tiles
        assert per_stage[stages.STAGE_QWYT] == tiles
        assert per_stage[stages.STAGE_Q_ADD] == tiles
        assert per_stage[stages.STAGE_YWTC] == tiles - 1
        assert per_stage[stages.STAGE_R_ADD] == tiles - 1

    def test_threads_per_block_is_tile_size(self, rng):
        a = mdrandom.random_matrix(12, 12, 2, rng)
        trace = blocked_qr(a, 6).trace
        assert all(launch.threads_per_block == 6 for launch in trace.launches)

    def test_flops_grow_with_precision(self, rng):
        a2 = mdrandom.random_matrix(8, 8, 2, rng)
        a4 = a2.astype(4)
        flops2 = blocked_qr(a2, 4).trace.total_flops()
        flops4 = blocked_qr(a4, 4).trace.total_flops()
        # same operation tallies, quad double multipliers are much larger
        assert flops4 > 3 * flops2

    def test_complex_flops_about_four_times_real(self, rng):
        real = mdrandom.random_matrix(8, 8, 2, rng)
        cplx = mdrandom.random_complex_matrix(8, 8, 2, rng)
        flops_r = blocked_qr(real, 4).trace.total_flops()
        flops_c = blocked_qr(cplx, 4).trace.total_flops()
        assert 2.5 < flops_c / flops_r < 4.5
