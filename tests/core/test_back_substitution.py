"""Tests for Algorithm 1 (tiled back substitution) and tile inversion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import stages
from repro.core.back_substitution import (
    solve_upper_triangular,
    tiled_back_substitution,
)
from repro.core.baseline import classical_back_substitution
from repro.core.tile_inverse import invert_upper_triangular, solve_upper_triangular_dense
from repro.vec import MDArray, MDComplexArray, linalg
from repro.vec import random as mdrandom


def residual_level(limbs: int) -> float:
    """Expected residual magnitude for a well conditioned solve."""
    return 2.0 ** (-50 * limbs)


class TestTileInverse:
    @pytest.mark.parametrize("n", [1, 2, 5, 8])
    def test_inverse_times_tile_is_identity(self, n, md_limbs, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(n, md_limbs, rng)
        inv = invert_upper_triangular(u)
        product = linalg.matmul(inv, u)
        err = np.max(np.abs(product.to_double() - np.eye(n)))
        assert err <= 1e4 * residual_level(md_limbs)

    def test_inverse_is_upper_triangular(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(6, 2, rng)
        inv = invert_upper_triangular(u)
        assert np.max(np.abs(np.tril(inv.to_double(), -1))) < 1e-25

    def test_complex_tile(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(5, 2, rng, complex_data=True)
        inv = invert_upper_triangular(u)
        product = linalg.matmul(inv, u)
        assert np.max(np.abs(product.to_complex() - np.eye(5))) < 1e-26

    def test_singular_tile_raises(self):
        u = MDArray.from_double(np.triu(np.ones((3, 3))), 2)
        u[1, 1] = 0.0
        with pytest.raises(ZeroDivisionError):
            invert_upper_triangular(u)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            invert_upper_triangular(MDArray.zeros((2, 3), 2))

    def test_dense_solve_matches_inverse(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(7, 4, rng)
        b = mdrandom.random_vector(7, 4, rng)
        x1 = solve_upper_triangular_dense(u, b)
        x2 = linalg.matvec(invert_upper_triangular(u), b)
        assert x1.allclose(x2, tol=1e-55)

    def test_dense_solve_validates_rhs(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(4, 2, rng)
        with pytest.raises(ValueError):
            solve_upper_triangular_dense(u, MDArray.zeros((5,), 2))


class TestTiledBackSubstitution:
    @pytest.mark.parametrize("dim,tile", [(12, 3), (16, 4), (24, 8), (20, 20), (8, 1)])
    def test_residual_at_working_precision(self, dim, tile, md_limbs, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(dim, md_limbs, rng)
        b = mdrandom.random_vector(dim, md_limbs, rng)
        result = tiled_back_substitution(u, b, tile)
        assert linalg.residual_norm(u, result.x, b) <= dim * 1e3 * residual_level(md_limbs)

    def test_kernel_launch_and_block_task_counts(self, rng):
        # the paper counts 1 + N(N+1)/2 block tasks for Algorithm 1; this
        # implementation groups the simultaneous updates of step 2(b) into
        # one launch with i-1 blocks, giving 2N launches
        from repro.core.back_substitution import paper_launch_count

        for dim, tile in ((24, 4), (32, 8), (18, 6)):
            n_tiles = dim // tile
            u = mdrandom.random_well_conditioned_upper_triangular(dim, 2, rng)
            b = mdrandom.random_vector(dim, 2, rng)
            result = tiled_back_substitution(u, b, tile)
            assert len(result.trace) == 2 * n_tiles
            assert paper_launch_count(n_tiles) == 1 + n_tiles * (n_tiles + 1) // 2
            # block tasks: the invert launch counts once in the paper's
            # formula, each update block counts individually
            update_blocks = sum(
                launch.blocks
                for launch in result.trace.launches
                if launch.stage == stages.STAGE_BACK_SUBSTITUTION
            )
            multiply_launches = sum(
                1
                for launch in result.trace.launches
                if launch.stage == stages.STAGE_MULTIPLY_INVERSE
            )
            assert 1 + multiply_launches + update_blocks == paper_launch_count(n_tiles)

    def test_stage_names_match_paper(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(12, 2, rng)
        b = mdrandom.random_vector(12, 2, rng)
        result = tiled_back_substitution(u, b, 4)
        assert result.trace.stages() == list(stages.BS_STAGES)

    def test_agrees_with_classical_baseline(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(20, 4, rng)
        b = mdrandom.random_vector(20, 4, rng)
        tiled = tiled_back_substitution(u, b, 5)
        classical, _ = classical_back_substitution(u, b)
        assert tiled.x.allclose(classical, tol=1e-55)

    def test_agrees_with_numpy_in_double(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(16, 2, rng)
        b = mdrandom.random_vector(16, 2, rng)
        x = tiled_back_substitution(u, b, 4).x
        reference = np.linalg.solve(np.triu(u.to_double()), b.to_double())
        assert np.allclose(x.to_double(), reference, rtol=1e-10)

    def test_complex_system(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(12, 2, rng, complex_data=True)
        b = mdrandom.random_complex_vector(12, 2, rng)
        result = tiled_back_substitution(u, b, 4)
        r = b - linalg.matvec(u, result.x)
        assert float(linalg.norm(r).to_double()) < 1e-27

    def test_result_metadata(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(12, 2, rng)
        b = mdrandom.random_vector(12, 2, rng)
        result = tiled_back_substitution(u, b, 3)
        assert result.tile_size == 3 and result.tiles == 4
        assert result.dimension == 12

    def test_ignores_strictly_lower_entries(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(9, 2, rng)
        b = mdrandom.random_vector(9, 2, rng)
        x_clean = tiled_back_substitution(u, b, 3).x
        dirty = u.copy()
        dirty.data[0] += np.tril(np.ones((9, 9)), -1) * 0.5  # garbage below diagonal
        x_dirty = tiled_back_substitution(linalg.triu(dirty), b, 3).x
        assert x_clean.allclose(x_dirty, tol=1e-25)

    def test_invalid_tile_size(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(10, 2, rng)
        b = mdrandom.random_vector(10, 2, rng)
        with pytest.raises(ValueError):
            tiled_back_substitution(u, b, 3)
        with pytest.raises(ValueError):
            tiled_back_substitution(u, b, 0)

    def test_input_validation(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(6, 2, rng)
        with pytest.raises(ValueError):
            tiled_back_substitution(u, MDArray.zeros((5,), 2), 2)
        with pytest.raises(ValueError):
            tiled_back_substitution(MDArray.zeros((4, 6), 2), MDArray.zeros((4,), 2), 2)
        with pytest.raises(ValueError):
            tiled_back_substitution(u, MDArray.zeros((6,), 4), 2)

    def test_bytes_and_flops_recorded(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(12, 4, rng)
        b = mdrandom.random_vector(12, 4, rng)
        trace = tiled_back_substitution(u, b, 4).trace
        assert trace.total_flops() > 0
        assert trace.total_bytes() > 0
        assert all(launch.threads_per_block == 4 for launch in trace.launches)


class TestSolveUpperTriangularWrapper:
    def test_default_tile_size(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(36, 2, rng)
        b = mdrandom.random_vector(36, 2, rng)
        x = solve_upper_triangular(u, b)
        assert linalg.residual_norm(u, x, b) < 1e-26

    def test_prime_dimension_falls_back_to_serial_tiling(self, rng):
        u = mdrandom.random_well_conditioned_upper_triangular(7, 2, rng)
        b = mdrandom.random_vector(7, 2, rng)
        x = solve_upper_triangular(u, b)
        assert linalg.residual_norm(u, x, b) < 1e-27
