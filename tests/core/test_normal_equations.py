"""Tests for the Cholesky / normal-equations baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lstsq
from repro.core.normal_equations import (
    cholesky_factor,
    solve_normal_equations,
)
from repro.vec import MDArray, linalg
from repro.vec import random as mdrandom


def spd_matrix(n, limbs, rng, complex_data=False):
    """A well conditioned Hermitian positive definite test matrix."""
    if complex_data:
        a = mdrandom.random_complex_matrix(n, n, limbs, rng)
        return linalg.matmul(linalg.conjugate_transpose(a), a) + linalg.identity(
            n, limbs, complex_data=True
        ) * 4.0
    a = mdrandom.random_matrix(n, n, limbs, rng)
    return linalg.matmul(linalg.conjugate_transpose(a), a) + linalg.identity(n, limbs) * 4.0


class TestCholesky:
    @pytest.mark.parametrize("limbs,tol", [(2, 1e-28), (4, 1e-59)])
    def test_factorization_residual(self, limbs, tol, rng):
        a = spd_matrix(8, limbs, rng)
        r = cholesky_factor(a)
        recon = linalg.matmul(linalg.conjugate_transpose(r), r)
        assert linalg.max_abs_entry(recon - a) < 8 * tol

    def test_factor_is_upper_triangular_with_positive_diagonal(self, rng):
        a = spd_matrix(6, 2, rng)
        r = cholesky_factor(a)
        head = r.to_double()
        assert np.max(np.abs(np.tril(head, -1))) == 0.0
        assert np.all(np.diag(head) > 0)

    def test_complex_factorization(self, rng):
        a = spd_matrix(5, 2, rng, complex_data=True)
        r = cholesky_factor(a)
        recon = linalg.matmul(linalg.conjugate_transpose(r), r)
        assert np.max(np.abs(recon.to_complex() - a.to_complex())) < 1e-26

    def test_matches_numpy_in_double(self, rng):
        a = spd_matrix(7, 2, rng)
        r = cholesky_factor(a)
        reference = np.linalg.cholesky(a.to_double()).T
        assert np.allclose(r.to_double(), reference, rtol=1e-12, atol=1e-12)

    def test_rejects_indefinite(self):
        a = MDArray.from_double(np.diag([1.0, -1.0]), 2)
        with pytest.raises(ZeroDivisionError):
            cholesky_factor(a)

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            cholesky_factor(MDArray.zeros((2, 3), 2))


class TestNormalEquationsSolver:
    @pytest.mark.parametrize("limbs,tol", [(2, 1e-24), (4, 1e-55)])
    def test_solves_well_conditioned_problems(self, limbs, tol, rng):
        a, b = mdrandom.random_lstsq_problem(16, 8, limbs, rng)
        result = solve_normal_equations(a, b)
        gradient = linalg.matvec(linalg.conjugate_transpose(a), b - linalg.matvec(a, result.x))
        assert linalg.max_abs_entry(gradient) < 16 * tol

    def test_agrees_with_qr_solver(self, rng):
        a, b = mdrandom.random_lstsq_problem(12, 6, 4, rng)
        x_ne = solve_normal_equations(a, b).x
        x_qr = lstsq(a, b, tile_size=3).x
        assert x_ne.allclose(x_qr, tol=1e-50)

    def test_complex_problem(self, rng):
        a, b = mdrandom.random_lstsq_problem(10, 5, 2, rng, complex_data=True)
        result = solve_normal_equations(a, b)
        gradient = linalg.matvec(linalg.conjugate_transpose(a), b - linalg.matvec(a, result.x))
        assert linalg.max_abs_entry(gradient) < 1e-23

    def test_trace_stages_recorded(self, rng):
        a, b = mdrandom.random_lstsq_problem(12, 6, 2, rng)
        result = solve_normal_equations(a, b)
        assert len(result.trace) == 3
        assert result.trace.total_flops() > 0

    def test_rhs_validation(self, rng):
        a, _ = mdrandom.random_lstsq_problem(8, 4, 2, rng)
        with pytest.raises(ValueError):
            solve_normal_equations(a, MDArray.zeros((7,), 2))

    def test_accuracy_loss_vs_qr_on_ill_conditioned_problem(self, rng):
        """The normal equations square the condition number: on a graded
        matrix the QR solution is orders of magnitude more accurate."""
        n = 10
        # singular values 1 .. 1e-9 with random left/right singular vectors:
        # the ill conditioning cannot be absorbed by a column scaling, so the
        # cond^2 error growth of the normal equations is fully exposed
        u, _ = np.linalg.qr(rng.standard_normal((n, n)))
        v, _ = np.linalg.qr(rng.standard_normal((n, n)))
        a = MDArray.from_double(u @ np.diag(10.0 ** -np.arange(n, dtype=float)) @ v.T, 2)
        x_true = mdrandom.random_vector(n, 2, rng)
        b = linalg.matvec(a, x_true)
        x_ne = solve_normal_equations(a, b).x
        x_qr = lstsq(a, b, tile_size=5).x
        err_ne = linalg.max_abs_entry(x_ne - x_true)
        err_qr = linalg.max_abs_entry(x_qr - x_true)
        assert err_qr < 1e-3 * err_ne
