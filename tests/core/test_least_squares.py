"""Tests for the least squares solver and the baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baseline import numpy_lstsq_double
from repro.core.least_squares import STAGE_APPLY_QT, lstsq, solve
from repro.vec import MDArray, MDComplexArray, linalg
from repro.vec import random as mdrandom


class TestSquareSystems:
    @pytest.mark.parametrize("limbs,tol", [(2, 1e-27), (4, 1e-58), (8, 1e-110)])
    def test_residual_reaches_working_precision(self, limbs, tol, rng):
        a = mdrandom.random_matrix(12, 12, limbs, rng)
        x_true = mdrandom.random_vector(12, limbs, rng)
        b = linalg.matvec(a, x_true)
        result = lstsq(a, b, tile_size=4)
        assert result.residual_norm(a, b) < 12 * tol
        assert result.x.allclose(x_true, tol=1e6 * tol)

    def test_solve_wrapper(self, rng):
        a = mdrandom.random_matrix(8, 8, 2, rng)
        b = mdrandom.random_vector(8, 2, rng)
        x = solve(a, b, tile_size=4)
        assert linalg.residual_norm(a, x, b) < 1e-27

    def test_solve_requires_square(self, rng):
        a, b = mdrandom.random_lstsq_problem(8, 4, 2, rng)
        with pytest.raises(ValueError):
            solve(a, b)

    def test_agrees_with_numpy_double(self, rng):
        a = mdrandom.random_matrix(10, 10, 2, rng)
        b = mdrandom.random_vector(10, 2, rng)
        x = solve(a, b, tile_size=5)
        reference = np.linalg.solve(a.to_double(), b.to_double())
        assert np.allclose(x.to_double(), reference, rtol=1e-9, atol=1e-9)

    def test_improves_on_double_precision(self, rng):
        """The multiple double solution reduces the residual far below the
        double precision solution's — the reason the paper exists."""
        a = mdrandom.random_matrix(12, 12, 4, rng)
        b = mdrandom.random_vector(12, 4, rng)
        x_md = solve(a, b, tile_size=4)
        x_double = numpy_lstsq_double(a, b)
        res_md = linalg.residual_norm(a, x_md, b)
        res_double = linalg.residual_norm(a, MDArray.from_double(x_double, 4), b)
        assert res_md < 1e-30 * max(res_double, 1e-30)


class TestOverdeterminedSystems:
    def test_normal_equations_hold(self, md_limbs, rng):
        a, b = mdrandom.random_lstsq_problem(18, 10, md_limbs, rng)
        result = lstsq(a, b, tile_size=5)
        # at the least squares minimum, A^T (b - A x) = 0
        residual = b - linalg.matvec(a, result.x)
        gradient = linalg.matvec(linalg.conjugate_transpose(a), residual)
        assert linalg.max_abs_entry(gradient) < 18 * 2.0 ** (-48 * md_limbs)

    def test_matches_numpy_lstsq_in_double(self, rng):
        a, b = mdrandom.random_lstsq_problem(15, 7, 2, rng)
        result = lstsq(a, b, tile_size=7)
        reference = numpy_lstsq_double(a, b)
        assert np.allclose(result.x.to_double(), reference, rtol=1e-8, atol=1e-8)

    def test_complex_least_squares(self, rng):
        a, b = mdrandom.random_lstsq_problem(12, 6, 2, rng, complex_data=True)
        result = lstsq(a, b, tile_size=3)
        residual = b - linalg.matvec(a, result.x)
        gradient = linalg.matvec(linalg.conjugate_transpose(a), residual)
        assert linalg.max_abs_entry(gradient) < 1e-26
        reference = numpy_lstsq_double(a, b)
        assert np.allclose(result.x.to_complex(), reference, rtol=1e-8, atol=1e-8)

    def test_rhs_length_validation(self, rng):
        a, _ = mdrandom.random_lstsq_problem(10, 5, 2, rng)
        with pytest.raises(ValueError):
            lstsq(a, MDArray.zeros((9,), 2))


class TestTracesAndDefaults:
    def test_traces_are_separate_and_combinable(self, rng):
        a = mdrandom.random_matrix(16, 16, 2, rng)
        b = mdrandom.random_vector(16, 2, rng)
        result = lstsq(a, b, tile_size=4)
        assert len(result.qr_trace) > 0
        assert len(result.bs_trace) > 0
        combined = result.combined_trace
        assert len(combined) == len(result.qr_trace) + len(result.bs_trace)
        assert STAGE_APPLY_QT in result.bs_trace.stages()

    def test_qr_dominates_backsub_operations(self, rng):
        """The paper observes the BS kernel time is about 100x smaller than
        QR at dimension 1,024; at any dimension the operation counts are
        already lopsided because QR is cubic and BS quadratic."""
        a = mdrandom.random_matrix(24, 24, 2, rng)
        b = mdrandom.random_vector(24, 2, rng)
        result = lstsq(a, b, tile_size=4)
        qr_ops = result.qr_trace.total_md_operations()
        bs_ops = result.bs_trace.total_md_operations()
        assert qr_ops > 5 * bs_ops

    def test_default_tile_size_splits_into_eight_panels(self, rng):
        a = mdrandom.random_matrix(16, 16, 2, rng)
        b = mdrandom.random_vector(16, 2, rng)
        result = lstsq(a, b)
        assert result.tile_size == 2

    def test_default_tile_size_odd_dimension(self, rng):
        a = mdrandom.random_matrix(9, 9, 2, rng)
        b = mdrandom.random_vector(9, 2, rng)
        result = lstsq(a, b)
        assert linalg.residual_norm(a, result.x, b) < 1e-26

    def test_device_selection_propagates(self, rng):
        a = mdrandom.random_matrix(8, 8, 2, rng)
        b = mdrandom.random_vector(8, 2, rng)
        result = lstsq(a, b, tile_size=4, device="P100")
        assert result.qr_trace.device.name == "Pascal P100"
        assert result.bs_trace.device.name == "Pascal P100"


class TestBaselines:
    def test_numpy_lstsq_accepts_plain_arrays(self, rng):
        a = rng.standard_normal((8, 4))
        b = rng.standard_normal(8)
        x = numpy_lstsq_double(a, b)
        assert np.allclose(x, np.linalg.lstsq(a, b, rcond=None)[0])

    def test_numpy_lstsq_accepts_md_arrays(self, rng):
        a, b = mdrandom.random_lstsq_problem(8, 4, 2, rng)
        x = numpy_lstsq_double(a, b)
        assert x.shape == (4,)

    def test_numpy_lstsq_accepts_complex(self, rng):
        a, b = mdrandom.random_lstsq_problem(8, 4, 2, rng, complex_data=True)
        x = numpy_lstsq_double(a, b)
        assert x.dtype.kind == "c"
