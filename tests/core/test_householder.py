"""Tests for Householder vectors and reflectors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.householder import (
    apply_reflector_left,
    householder_vector,
    reflector_matrix,
)
from repro.vec import MDArray, MDComplexArray, linalg
from repro.vec import random as mdrandom


def md_eps(limbs: int) -> float:
    return 2.0 ** (-50 * limbs)


class TestRealHouseholder:
    def test_annihilates_below_first_entry(self, md_limbs, rng):
        x = mdrandom.random_vector(9, md_limbs, rng)
        v, beta, s = householder_vector(x)
        P = reflector_matrix(v, beta)
        px = linalg.matvec(P, x)
        tail = px[1:].abs().max_abs_double()
        assert tail <= 64 * md_eps(md_limbs)

    def test_maps_to_signed_norm(self, md_limbs, rng):
        x = mdrandom.random_vector(6, md_limbs, rng)
        v, beta, s = householder_vector(x)
        px = linalg.matvec(reflector_matrix(v, beta), x)
        head = px[0] - s
        assert abs(float(head.to_double())) <= 64 * md_eps(md_limbs)
        norm = float(linalg.norm(x).to_double())
        assert abs(abs(float(s.to_double())) - norm) <= 1e-13

    def test_sign_choice_avoids_cancellation(self):
        # leading entry positive -> s negative, v[0] = x0 + ||x||
        x = MDArray.from_double(np.array([3.0, 4.0]), 2)
        v, beta, s = householder_vector(x)
        assert float(s.to_double()) == pytest.approx(-5.0)
        assert float(v[0].to_double()) == pytest.approx(8.0)
        # leading entry negative -> s positive
        x2 = MDArray.from_double(np.array([-3.0, 4.0]), 2)
        _, _, s2 = householder_vector(x2)
        assert float(s2.to_double()) == pytest.approx(5.0)

    def test_reflector_is_orthogonal_and_symmetric(self, rng):
        x = mdrandom.random_vector(5, 2, rng)
        v, beta, _ = householder_vector(x)
        P = reflector_matrix(v, beta)
        eye = linalg.matmul(P, P)
        assert np.max(np.abs(eye.to_double() - np.eye(5))) < 1e-29
        assert np.max(np.abs(P.to_double() - P.to_double().T)) < 1e-30

    def test_zero_column(self):
        x = MDArray.zeros((4,), 2)
        v, beta, s = householder_vector(x)
        assert float(beta.to_double()) == 0.0
        assert float(v[0].to_double()) == 1.0
        assert float(s.to_double()) == 0.0

    def test_single_element_column(self):
        x = MDArray.from_double(np.array([2.5]), 2)
        v, beta, s = householder_vector(x)
        px = linalg.matvec(reflector_matrix(v, beta), x)
        assert abs(float(px[0].to_double())) == pytest.approx(2.5)

    def test_requires_vector(self):
        with pytest.raises(ValueError):
            householder_vector(MDArray.zeros((3, 3), 2))


class TestComplexHouseholder:
    def test_annihilates_below_first_entry(self, rng):
        x = mdrandom.random_complex_vector(7, 2, rng)
        v, beta, s = householder_vector(x)
        P = reflector_matrix(v, beta)
        px = linalg.matvec(P, x)
        tail = np.max(np.abs(px[1:].to_complex()))
        assert tail < 1e-29

    def test_result_magnitude_is_norm(self, rng):
        x = mdrandom.random_complex_vector(5, 4, rng)
        v, beta, s = householder_vector(x)
        px = linalg.matvec(reflector_matrix(v, beta), x)
        norm = float(linalg.norm(x).to_double())
        assert abs(px[0].to_complex()) == pytest.approx(norm, rel=1e-12)
        assert abs(complex(s.to_complex())) == pytest.approx(norm, rel=1e-12)

    def test_beta_is_real(self, rng):
        x = mdrandom.random_complex_vector(5, 2, rng)
        _, beta, _ = householder_vector(x)
        assert isinstance(beta, MDArray)

    def test_unitarity(self, rng):
        x = mdrandom.random_complex_vector(4, 2, rng)
        v, beta, _ = householder_vector(x)
        P = reflector_matrix(v, beta)
        PHP = linalg.matmul(linalg.conjugate_transpose(P), P)
        assert np.max(np.abs(PHP.to_complex() - np.eye(4))) < 1e-29

    def test_zero_column(self):
        x = MDComplexArray.zeros((3,), 2)
        v, beta, s = householder_vector(x)
        assert float(beta.to_double()) == 0.0
        assert complex(v[0].to_complex()) == 1.0


class TestApplyReflector:
    def test_matches_explicit_matrix_product_real(self, rng):
        a = mdrandom.random_matrix(6, 4, 2, rng)
        v, beta, _ = householder_vector(a[:, 0])
        direct = apply_reflector_left(a, v, beta)
        explicit = linalg.matmul(reflector_matrix(v, beta), a)
        # absolute comparison: the annihilated entries are ~0, so a
        # relative test would compare rounding noise against itself
        assert linalg.max_abs_entry(direct - explicit) < 1e-28

    def test_matches_explicit_matrix_product_complex(self, rng):
        a = mdrandom.random_complex_matrix(5, 3, 2, rng)
        v, beta, _ = householder_vector(a[:, 0])
        direct = apply_reflector_left(a, v, beta)
        explicit = linalg.matmul(reflector_matrix(v, beta), a)
        assert linalg.max_abs_entry(direct - explicit) < 1e-28

    def test_first_column_becomes_e1_multiple(self, rng):
        a = mdrandom.random_matrix(5, 3, 4, rng)
        v, beta, s = householder_vector(a[:, 0])
        updated = apply_reflector_left(a, v, beta)
        below = np.max(np.abs(updated.to_double()[1:, 0]))
        assert below < 1e-60
        assert float(updated[0, 0].to_double()) == pytest.approx(float(s.to_double()))

    def test_requires_matrix_block(self, rng):
        x = mdrandom.random_vector(4, 2, rng)
        v, beta, _ = householder_vector(x)
        with pytest.raises(ValueError):
            apply_reflector_left(x, v, beta)

    def test_reflector_matrix_size_override(self, rng):
        x = mdrandom.random_vector(3, 2, rng)
        v, beta, _ = householder_vector(x)
        P = reflector_matrix(v, beta, size=3)
        assert P.shape == (3, 3)
