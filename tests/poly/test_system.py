"""PolynomialSystem: construction, evaluation, bit-identity contracts."""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest

from repro.md.number import MultiDouble
from repro.poly import PolynomialSystem
from repro.poly.reference import (
    pairwise_product,
    reference_evaluate,
    reference_jacobian,
)
from repro.series.reference import ScalarSeries
from repro.series.truncated import TruncatedSeries
from repro.vec.mdarray import MDArray


def example_system() -> PolynomialSystem:
    """F = [x^2 + y - 3, x*y - 2]."""
    return PolynomialSystem(
        [
            [(1, (2, 0)), (1, (0, 1)), (-3, (0, 0))],
            [(1, (1, 1)), (-2, (0, 0))],
        ]
    )


def dense_system() -> PolynomialSystem:
    """Three dense cubics in three variables (odd term counts, odd
    variable count — exercises the padding of every reduction tree)."""
    rng = np.random.default_rng(20220322)
    equations = []
    for _ in range(3):
        terms = []
        for _ in range(5):
            exponents = tuple(int(e) for e in rng.integers(0, 3, size=3))
            terms.append((float(rng.standard_normal()), exponents))
        terms.append((1.5, (0, 0, 0)))
        equations.append(terms)
    return PolynomialSystem(equations, 3)


class TestConstruction:
    def test_shape_metadata(self):
        system = example_system()
        assert system.equations == 2
        assert system.variables == 2
        assert system.degrees == (2, 2)
        assert system.total_degree == 4
        assert system.monomials == 5
        # products: 1, y, x, xy, x^2 (derivative products are subsets)
        assert system.distinct_products == 5
        assert system.shape["n"] == 2

    def test_like_monomials_merge(self):
        system = PolynomialSystem([[(1, (1,)), (2, (1,)), (1, (0,))]], 1)
        assert system.monomials == 2
        value = system.evaluate([2.0], 2)
        assert float(value.to_double()[0]) == 3 * 2.0 + 1

    def test_dict_exponents(self):
        system = PolynomialSystem([[(1, {0: 2}), (-1, {})]], variables=3)
        assert system.variables == 3
        assert float(system.evaluate([3.0, 0.0, 0.0], 2).to_double()[0]) == 8.0

    def test_zero_equation_rejected(self):
        with pytest.raises(ValueError):
            PolynomialSystem([[(1, (1,)), (-1, (1,))]], 1)

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            PolynomialSystem([[(1, (-1,))]], 1)

    def test_fraction_and_string_coefficients(self):
        system = PolynomialSystem(
            [[(Fraction(1, 3), (1,)), ("0.25", (0, ))]], 1
        )
        value = system.evaluate([3.0], 4).to_multidouble(0)
        expected = MultiDouble(Fraction(1, 3), 4) * 3 + MultiDouble("0.25", 4)
        assert value.limbs == expected.limbs


class TestEvaluation:
    def test_against_exact_fractions(self):
        system = example_system()
        x, y = Fraction(5, 4), Fraction(-1, 2)
        values = system.evaluate([x, y], 8)
        exact = [x * x + y - 3, x * y - 2]
        for i, expected in enumerate(exact):
            assert values.to_multidouble(i).to_fraction() == pytest.approx(
                float(expected), abs=1e-100
            )

    def test_jacobian_values(self):
        system = example_system()
        jac = system.jacobian_matrix([1.25, -0.5], 2).to_double()
        assert jac == pytest.approx(np.array([[2.5, 1.0], [-0.5, 1.25]]))

    def test_evaluate_with_jacobian_matches_separate_calls(self):
        system = dense_system()
        point = [0.3, -1.2, 0.7]
        values, jacobian = system.evaluate_with_jacobian(point, 2)
        assert values.equals(system.evaluate(point, 2))
        assert jacobian.equals(system.jacobian_matrix(point, 2))

    def test_mdarray_point(self):
        system = example_system()
        point = MDArray.from_double(np.array([1.25, -0.5]), 4)
        assert system.evaluate(point).equals(system.evaluate([1.25, -0.5], 4))

    def test_wrong_dimension_rejected(self):
        with pytest.raises(ValueError):
            example_system().evaluate([1.0], 2)


class TestBitIdentity:
    """The vectorized path against the loop-per-monomial reference —
    exact limb equality at every paper precision."""

    def test_point_evaluation(self, limbs):
        system = dense_system()
        point = [0.37, -1.21, 0.73]
        vectorized = system.evaluate(point, limbs)
        reference = reference_evaluate(system, point, limbs)
        for i, value in enumerate(reference):
            assert np.array_equal(vectorized.data[:, i], np.array(value.limbs))

    def test_jacobian(self, limbs):
        system = dense_system()
        point = [0.37, -1.21, 0.73]
        vectorized = system.jacobian_matrix(point, limbs)
        reference = reference_jacobian(system, point, limbs)
        for i in range(system.equations):
            for j in range(system.variables):
                assert np.array_equal(
                    vectorized.data[:, i, j], np.array(reference[i][j].limbs)
                )

    def test_series_evaluation(self, limbs):
        system = dense_system()
        rng = np.random.default_rng(5)
        coefficients = rng.standard_normal((3, 6))
        vectorized = system(
            [TruncatedSeries(list(row), limbs) for row in coefficients]
        )
        reference = system(
            [ScalarSeries(list(row), limbs) for row in coefficients]
        )
        assert all(isinstance(s, ScalarSeries) for s in reference)
        for a, b in zip(vectorized, reference):
            expected = np.array([c.limbs for c in b.coefficients]).T
            assert np.array_equal(a.coefficients.data, expected)

    def test_pairwise_product_matches_mdarray_prod(self, limbs):
        rng = np.random.default_rng(9)
        values = [MultiDouble(float(v), limbs) for v in rng.standard_normal(5)]
        array = MDArray.from_multidoubles(values, limbs)
        scalar = pairwise_product(values, MultiDouble(1, limbs))
        assert np.array_equal(
            array.prod(axis=0).data.reshape(-1), np.array(scalar.limbs)
        )


class TestSeriesOverloads:
    def test_jacobian_vs_series_directional_derivative(self):
        """The order-1 coefficient of ``F(x0 + t v)`` is ``J(x0) v`` —
        the finite-difference-on-series cross-check (exact up to
        rounding in the working precision)."""
        system = dense_system()
        point = [0.37, -1.21, 0.73]
        direction = [1.7, -0.4, 0.9]
        arguments = [
            TruncatedSeries([x, v], 4) for x, v in zip(point, direction)
        ]
        residuals = system(arguments)
        jacobian = system.jacobian_matrix(point, 4)
        jv = jacobian * MDArray.from_double(np.array(direction), 4).reshape(1, 3)
        expected = jv.sum(axis=1).to_double()
        observed = np.array([float(r.coefficient(1)) for r in residuals])
        assert observed == pytest.approx(expected, rel=1e-12, abs=1e-12)

    def test_order_zero_series_match_point_evaluation(self):
        system = example_system()
        point = [1.25, -0.5]
        series = system([TruncatedSeries([v], 2) for v in point])
        values = system.evaluate(point, 2)
        for i, s in enumerate(series):
            assert np.array_equal(
                s.coefficients.data[:, 0], values.data[:, i]
            )

    def test_parametric_system_appends_t(self):
        """A system with one more variable than unknowns treats the
        parameter series as its last variable (F(x, t) = x^2 - 1 - t)."""
        system = PolynomialSystem([[(1, (2, 0)), (-1, (0, 0)), (-1, (0, 1))]], 2)
        x = TruncatedSeries([1.0, 0.0, 0.0], 2)
        t = TruncatedSeries.variable(2, 2)
        (residual,) = system([x], t)
        assert float(residual.coefficient(0)) == 0.0
        assert float(residual.coefficient(1)) == -1.0
        jacobian = system.jacobian([MultiDouble(1, 2)], 0.0)
        assert jacobian.shape == (1, 1)
        assert float(jacobian.to_double()[0, 0]) == 2.0

    def test_newton_series_accepts_system_directly(self):
        """The acceptance contract: no hand-written callables."""
        from repro.series import newton_series

        system = PolynomialSystem([[(1, (2, 0)), (-1, (0, 0)), (-1, (0, 1))]], 2)
        result = newton_series(system, [1.0], 6, 2)
        # x(t) = sqrt(1 + t) = 1 + t/2 - t^2/8 + t^3/16 - ...
        expected = [1.0, 0.5, -0.125, 0.0625]
        observed = [float(c) for c in result.series[0].coefficients][:4]
        assert observed == pytest.approx(expected, rel=1e-12)
        reference = newton_series(system, [1.0], 6, 2, backend="reference")
        assert result.vector.equals(reference.vector)

    def test_track_path_accepts_system_directly(self):
        from repro.series.tracker import track_path

        system = PolynomialSystem([[(1, (2, 0)), (-1, (0, 0)), (-1, (0, 1))]], 2)
        result = track_path(system, [1.0], tol=1e-10, order=8, max_steps=32)
        assert result.reached
        assert float(result.final_point[0]) == pytest.approx(np.sqrt(2.0), rel=1e-10)
