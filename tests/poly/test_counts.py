"""Accounting: polynomial_counts, instrumented tallies, launch traces."""

from __future__ import annotations

import pytest

from repro.gpu.kernel import KernelTrace
from repro.md.opcounts import polynomial_counts
from repro.perf.costmodel import polynomial_evaluation_trace
from repro.poly import PolynomialSystem, cyclic, katsura
from repro.poly.reference import instrumented_counts


def example_system() -> PolynomialSystem:
    return PolynomialSystem(
        [
            [(1, (2, 0)), (1, (0, 1)), (-3, (0, 0))],
            [(1, (1, 1)), (-2, (0, 0))],
        ]
    )


class TestPolynomialCounts:
    @pytest.mark.parametrize(
        "system", [example_system(), katsura(3), cyclic(4)], ids=["small", "katsura3", "cyclic4"]
    )
    def test_matches_instrumented_kernel_tallies(self, system):
        """The analytic counts equal the operations the reference
        kernels actually execute (counting-element replay of one
        evaluation + Jacobian with shared power products)."""
        counts = system.counts()
        measured = instrumented_counts(system)
        assert counts.combined.mul == measured["mul"]
        assert counts.combined.add == measured["add"]

    def test_shared_products_paid_once(self):
        counts = katsura(4).counts()
        separate = counts.evaluation.md_operations + counts.jacobian.md_operations
        assert counts.combined.md_operations < separate
        assert counts.combined.md_operations == pytest.approx(
            separate - counts.shared.md_operations
        )

    def test_structure_metadata(self):
        system = cyclic(4)
        counts = system.counts()
        assert counts.monomials == system.monomials == 14
        assert counts.products == system.distinct_products
        assert counts.max_degree == system.max_degree == 1
        # cyclic systems are multilinear: no power table launches at all
        assert counts.equations == counts.variables == 4

    def test_flops_grow_with_precision(self):
        counts = katsura(3).counts()
        assert (
            counts.evaluation_flops(1)
            < counts.evaluation_flops(2)
            < counts.evaluation_flops(4)
            < counts.evaluation_flops(8)
        )
        assert counts.jacobian_flops(2) > 0
        assert counts.combined_flops(2) < counts.evaluation_flops(2) + counts.jacobian_flops(2)

    def test_series_order_scales_the_grid(self):
        base = example_system().counts(order=0)
        series = example_system().counts(order=3)
        # each multiplication becomes a (K+1)^2 product grid
        assert series.shared.mul == base.shared.mul * 16
        assert series.evaluation_terms.mul == base.evaluation_terms.mul * 4

    def test_invalid_shape_rejected(self):
        with pytest.raises(ValueError):
            polynomial_counts(
                0, 1, monomials=1, products=1, max_degree=1,
                term_slots=1, jacobian_slots=1,
            )


class TestLaunchTrace:
    @pytest.mark.parametrize("order", [0, 3])
    def test_numeric_trace_matches_analytic_trace(self, order):
        """The launches the numeric evaluator records are exactly the
        analytic model's (names, geometry, tallies, bytes)."""
        system = example_system()
        numeric = KernelTrace("V100")
        if order == 0:
            system.evaluate_with_jacobian([1.25, -0.5], 2, trace=numeric)
            jacobian_slots = system._jacobian_slots
        else:
            from repro.series.truncated import TruncatedSeries

            system.evaluate_series(
                [
                    TruncatedSeries([1.25, 0.5, 0.1, -0.2], 2),
                    TruncatedSeries([-0.5, 1.0, 0.0, 0.3], 2),
                ],
                trace=numeric,
            )
            jacobian_slots = None
        analytic = polynomial_evaluation_trace(
            system.equations,
            system.variables,
            system.distinct_products,
            system.max_degree,
            system._term_slots,
            2,
            order=order,
            jacobian_slots=jacobian_slots,
        )
        assert len(numeric.launches) == len(analytic.launches)
        for observed, expected in zip(numeric.launches, analytic.launches):
            assert observed.name == expected.name
            assert observed.stage == expected.stage
            assert observed.blocks == expected.blocks
            assert observed.threads_per_block == expected.threads_per_block
            assert observed.tally.multiplications == expected.tally.multiplications
            assert observed.tally.additions == expected.tally.additions
            assert observed.bytes_read == expected.bytes_read
            assert observed.bytes_written == expected.bytes_written

    def test_trace_tallies_equal_analytic_counts(self):
        """The trace's summed tallies agree with polynomial_counts."""
        system = katsura(3)
        counts = system.counts()
        trace = polynomial_evaluation_trace(
            system.equations,
            system.variables,
            system.distinct_products,
            system.max_degree,
            system._term_slots,
            2,
            jacobian_slots=system._jacobian_slots,
        )
        assert sum(l.tally.multiplications for l in trace.launches) == counts.combined.mul
        assert sum(l.tally.additions for l in trace.launches) == counts.combined.add

    def test_jacobian_only_trace(self):
        system = example_system()
        numeric = KernelTrace("V100")
        system.jacobian_matrix([1.0, 2.0], 2, trace=numeric)
        analytic = polynomial_evaluation_trace(
            system.equations,
            system.variables,
            system.distinct_products,
            system.max_degree,
            system._term_slots,
            2,
            jacobian_slots=system._jacobian_slots,
            evaluate=False,
        )
        assert [l.name for l in numeric.launches] == [l.name for l in analytic.launches]
        assert "term_scale" not in {l.name for l in numeric.launches}
