"""Benchmark families: structure, reproducibility, known solutions."""

from __future__ import annotations

import cmath
import math

import numpy as np
import pytest

from repro.poly import cyclic, katsura, noon
from repro.poly.homotopy import embed_complex, realify_terms
from repro.poly.system import PolynomialSystem


class TestKatsura:
    @pytest.mark.parametrize("n", [1, 3, 6])
    def test_shape(self, n):
        system = katsura(n)
        assert system.equations == system.variables == n + 1
        assert system.degrees == (2,) * n + (1,)
        assert system.total_degree == 2 ** n

    def test_known_solution(self):
        # u_0 = 1, u_1 = ... = u_n = 0 solves every Katsura system
        system = katsura(4)
        values = system.evaluate([1.0, 0.0, 0.0, 0.0, 0.0], 2)
        assert np.max(np.abs(values.to_double())) == 0.0

    def test_deterministic(self):
        assert katsura(3).terms == katsura(3).terms


class TestCyclic:
    @pytest.mark.parametrize("n", [2, 4, 5])
    def test_shape(self, n):
        system = cyclic(n)
        assert system.equations == system.variables == n
        assert system.degrees == tuple(range(1, n)) + (n,)
        assert system.total_degree == math.factorial(n)

    def test_cyclic3_roots_of_unity_solution(self):
        # (1, w, w^2) with w a primitive cube root of unity solves
        # cyclic-3 (realified check, since the root is complex)
        system = cyclic(3)
        omega = cmath.exp(2j * math.pi / 3)
        real_system = PolynomialSystem(realify_terms(system.terms, 3), 6)
        values = real_system.evaluate(embed_complex([1, omega, omega ** 2]), 2)
        assert np.max(np.abs(values.to_double())) < 1e-14

    def test_multilinear_power_table(self):
        # cyclic monomials are squarefree: the power table is trivial
        assert cyclic(5).max_degree == 1


class TestNoon:
    @pytest.mark.parametrize("n", [2, 3])
    def test_shape(self, n):
        system = noon(n)
        assert system.equations == system.variables == n
        assert system.degrees == (3,) * n
        assert system.total_degree == 3 ** n

    def test_parameter_enters_linear_term(self):
        system = noon(3, parameter=2.5)
        x = [0.4, -0.3, 0.8]
        sumsq = sum(v * v for v in x)
        expected = [
            x[i] * (sumsq - x[i] * x[i]) - 2.5 * x[i] + 1 for i in range(3)
        ]
        assert system.evaluate(x, 2).to_double() == pytest.approx(expected)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            katsura(0)
        with pytest.raises(ValueError):
            cyclic(1)
        with pytest.raises(ValueError):
            noon(1)
