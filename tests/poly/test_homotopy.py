"""Homotopies: realification, endpoint identities, start solutions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.number import MultiDouble
from repro.poly import (
    Homotopy,
    PolynomialSystem,
    cyclic,
    embed_complex,
    extract_complex,
    realify_terms,
    roots_of_unity,
    total_degree_start,
)
from repro.series.reference import ScalarSeries
from repro.series.truncated import TruncatedSeries
from repro.vec.mdarray import MDArray


def complex_evaluate(terms, point):
    """Plain-complex evaluation of a term list (the realification oracle)."""
    values = []
    for eq in terms:
        total = 0j
        for coefficient, exponents in eq:
            product = complex(coefficient)
            for z, e in zip(point, exponents):
                product *= z ** e
            total += product
        values.append(total)
    return values


class TestRealify:
    def test_matches_complex_evaluation(self):
        terms = [
            [(1, (2, 0)), (2 - 1j, (1, 1)), (-3j, (0, 0))],
            [(1j, (0, 3)), (1, (1, 0))],
        ]
        real_system = PolynomialSystem(realify_terms(terms, 2), 4)
        rng = np.random.default_rng(2)
        for _ in range(3):
            point = [complex(a, b) for a, b in rng.standard_normal((2, 2))]
            observed = real_system.evaluate(embed_complex(point), 2).to_double()
            expected = complex_evaluate(terms, point)
            assert observed[:2] == pytest.approx([v.real for v in expected])
            assert observed[2:] == pytest.approx([v.imag for v in expected])

    def test_exact_powers_of_i(self):
        # (x)^4 realified must have exact integer coefficients
        # (1j ** 4 in Python floats would leak rounding error)
        real_parts = realify_terms([[(1, (4,)), (-1, (0,))]], 1)
        for coefficient, _ in real_parts[0] + real_parts[1]:
            assert coefficient == int(coefficient)

    def test_degenerate_equation_rejected(self):
        with pytest.raises(ValueError):
            realify_terms([[(1, (0,))]], 1)  # constant: zero imaginary part

    def test_embed_extract_roundtrip(self):
        point = [1.5 - 2j, 0.25j, -3.0]
        assert extract_complex(embed_complex(point)) == [complex(v) for v in point]
        with pytest.raises(ValueError):
            extract_complex([1.0, 2.0, 3.0])


class TestTotalDegreeStart:
    def test_roots_of_unity(self):
        roots = roots_of_unity(6)
        assert len(roots) == 6
        assert roots[0] == 1
        for root in roots:
            assert abs(root ** 6 - 1) < 1e-12

    def test_start_solutions_solve_start_system(self):
        terms, solutions = total_degree_start([2, 3])
        assert len(solutions) == 6
        for solution in solutions:
            values = complex_evaluate(terms, solution)
            assert max(abs(v) for v in values) < 1e-12

    def test_homotopy_seeds_all_paths(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7)
        assert homotopy.path_count == cyclic(3).total_degree == 6
        for start in homotopy.start_solutions():
            residual = homotopy.start_system.evaluate(start, 2)
            assert np.max(np.abs(residual.to_double())) < 1e-12


class TestGamma:
    def test_reproducible_from_seed(self):
        a = Homotopy.total_degree(cyclic(3), seed=123)
        b = Homotopy.total_degree(cyclic(3), seed=123)
        c = Homotopy.total_degree(cyclic(3), seed=124)
        assert a.gamma == b.gamma
        assert a.gamma != c.gamma
        assert abs(abs(a.gamma) - 1.0) < 1e-12  # on the unit circle

    def test_explicit_gamma(self):
        homotopy = Homotopy.total_degree(cyclic(3), gamma=0.6 + 0.8j)
        assert homotopy.gamma == 0.6 + 0.8j
        with pytest.raises(ValueError):
            Homotopy.total_degree(cyclic(3), gamma=0)


class TestEndpointIdentities:
    """``H(x, 0) = gamma G(x)`` and ``H(x, 1) = F(x)`` — exact, because
    multiplying a series by the exact constant 0/1 series is error
    free in the expansion arithmetic."""

    @pytest.fixture()
    def homotopy(self):
        return Homotopy.total_degree(cyclic(3), seed=7)

    @pytest.fixture()
    def arguments(self, homotopy):
        rng = np.random.default_rng(4)
        return [
            TruncatedSeries(list(row), 2)
            for row in rng.standard_normal((homotopy.real_dimension, 4))
        ]

    def test_h_at_zero_is_gamma_g(self, homotopy, arguments):
        n = homotopy.dimension
        t = TruncatedSeries.constant(0, 3, 2)
        observed = homotopy(arguments, t)
        g = homotopy.start_system.evaluate_series(arguments)
        a = MultiDouble(homotopy.gamma.real, 2)
        b = MultiDouble(homotopy.gamma.imag, 2)
        g_re = MDArray(g.coefficients.data[:, :n])
        g_im = MDArray(g.coefficients.data[:, n:])
        expected_re = g_re * a - g_im * b
        expected_im = g_re * b + g_im * a
        for i in range(n):
            assert np.array_equal(
                observed[i].coefficients.data, expected_re.data[:, i]
            )
            assert np.array_equal(
                observed[n + i].coefficients.data, expected_im.data[:, i]
            )

    def test_h_at_one_is_target(self, homotopy, arguments):
        t = TruncatedSeries.constant(1, 3, 2)
        observed = homotopy(arguments, t)
        expected = homotopy.target_system.evaluate_series(arguments)
        for i, series in enumerate(observed):
            assert np.array_equal(
                series.coefficients.data, expected.coefficients.data[:, i]
            )

    def test_jacobian_endpoints(self, homotopy):
        point = [0.3, -0.7, 1.1, 0.2, -0.4, 0.9]
        j_start = homotopy.jacobian(point, 0.0).to_double()
        j_end = homotopy.jacobian(point, 1.0).to_double()
        n = homotopy.dimension
        jg = homotopy.start_system.jacobian_matrix(point, 2).to_double()
        jf = homotopy.target_system.jacobian_matrix(point, 2).to_double()
        a, b = homotopy.gamma.real, homotopy.gamma.imag
        expected_start = np.concatenate(
            [a * jg[:n] - b * jg[n:], b * jg[:n] + a * jg[n:]]
        )
        assert j_start == pytest.approx(expected_start)
        assert j_end == pytest.approx(jf)


class TestBitIdentity:
    def test_vectorized_vs_reference_at_every_precision(self, limbs):
        """The tracker-visible residual H(x, t): vectorized
        TruncatedSeries arguments against the scalar reference, exact
        limb equality at d/dd/qd/od."""
        homotopy = Homotopy.total_degree(cyclic(3), seed=7)
        rng = np.random.default_rng(6)
        coefficients = rng.standard_normal((homotopy.real_dimension, 5))
        vectorized = homotopy(
            [TruncatedSeries(list(row), limbs) for row in coefficients],
            TruncatedSeries.variable(4, limbs, head=0.3),
        )
        reference = homotopy(
            [ScalarSeries(list(row), limbs) for row in coefficients],
            ScalarSeries.variable(4, limbs, head=0.3),
        )
        for a, b in zip(vectorized, reference):
            expected = np.array([c.limbs for c in b.coefficients]).T
            assert np.array_equal(a.coefficients.data, expected)


class TestValidation:
    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Homotopy(cyclic(3), PolynomialSystem([[(1, (1, 1)), (1, (0, 0))]], 2))

    def test_wrong_argument_count_rejected(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7)
        with pytest.raises(ValueError):
            homotopy([TruncatedSeries([1.0], 2)], TruncatedSeries([0.0], 2))

    def test_resolve_start_shapes(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7)
        realified = homotopy._resolve_start([1 + 1j, 2, 3 - 1j])
        assert realified == [1.0, 2.0, 3.0, 1.0, 0.0, -1.0]
        assert homotopy._resolve_start(realified) == realified
        with pytest.raises(ValueError):
            homotopy._resolve_start([1.0, 2.0])
