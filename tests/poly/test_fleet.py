"""End-to-end: total-degree fleets through the batched tracker.

The acceptance contract of the ``repro.poly`` subsystem: a
``PolynomialSystem``/``Homotopy`` hands itself to ``track_paths`` with
no hand-written callables, the fleet finds the target's roots, and the
vectorized evaluation driving every step is bit-identical to the
scalar loop-per-monomial reference at every paper precision
(``tests/poly/test_homotopy.py`` pins the per-precision identity on
cyclic-3; here cyclic-4 is pinned along real tracked paths).

Full cyclic-4 tracking to ``t = 1`` is *not* attempted in tier 1: its
solution set is positive dimensional (the classic degenerate cyclic
case), so endpoints are singular and the adaptive tracker would crawl
through the od rung; the fleet is instead tracked through the regular
part of the homotopy, and the all-roots contract is exercised on
cyclic-2 (whose two complex roots the fleet must find exactly).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.batch.fleet import track_paths
from repro.poly import Homotopy, cyclic
from repro.poly.homotopy import extract_complex
from repro.series.reference import ScalarSeries
from repro.series.tracker import track_path
from repro.series.truncated import TruncatedSeries


class TestCyclic2AllRoots:
    """cyclic-2 has exactly two (complex) roots: (i, -i) and (-i, i);
    the total-degree fleet must find both, each exactly once."""

    @pytest.fixture(scope="class")
    def homotopy(self):
        return Homotopy.total_degree(cyclic(2), seed=7)

    @pytest.fixture(scope="class")
    def fleet(self, homotopy):
        return homotopy.track_fleet(
            tol=1e-6, order=8, max_steps=48, precision_ladder=(1, 2, 4)
        )

    def test_every_path_reaches_the_target(self, fleet):
        assert fleet.batch == 2
        assert fleet.reached_count == 2
        assert fleet.failed_count == 0

    def test_endpoints_are_the_two_roots(self, homotopy, fleet):
        expected = {(1j, -1j), (-1j, 1j)}
        observed = set()
        for path in fleet.paths:
            z = [v.as_complex() for v in extract_complex(path.final_point)]
            rounded = tuple(complex(round(v.real, 6), round(v.imag, 6)) for v in z)
            observed.add(rounded)
            assert homotopy.target_residual(path.final_point) < 1e-10
        assert observed == expected

    def test_endpoints_distinct(self, fleet):
        ends = [
            extract_complex([float(v) for v in path.final_point])
            for path in fleet.paths
        ]
        for a, b in itertools.combinations(ends, 2):
            assert max(abs(x - y) for x, y in zip(a, b)) > 1e-3

    def test_fleet_bitwise_equals_solo_tracking(self, homotopy, fleet):
        solo = homotopy.track(
            homotopy.start_solutions()[0],
            tol=1e-6,
            order=8,
            max_steps=48,
            precision_ladder=(1, 2, 4),
        )
        assert fleet.paths[0].steps == solo.steps
        assert fleet.paths[0].reached == solo.reached
        assert [float(v) for v in fleet.paths[0].final_point] == [
            float(v) for v in solo.final_point
        ]


class TestCyclic4Fleet:
    """The degenerate cyclic case, tracked through the regular part of
    its total-degree homotopy in lock-step batched steps."""

    @pytest.fixture(scope="class")
    def homotopy(self):
        return Homotopy.total_degree(cyclic(4), seed=11)

    def test_total_degree_seeding(self, homotopy):
        assert homotopy.path_count == 24  # 1 * 2 * 3 * 4
        assert homotopy.real_dimension == 8

    @pytest.fixture(scope="class")
    def fleet(self, homotopy):
        # track_paths(homotopy, starts): the object is the system, the
        # Jacobian adapter is generated — no hand-written callables
        return track_paths(
            homotopy,
            homotopy.start_solutions()[:3],
            tol=1e-6,
            order=6,
            max_steps=12,
            t_end=0.35,
            precision_ladder=(1, 2),
        )

    def test_every_path_advances(self, fleet):
        assert fleet.batch == 3
        assert fleet.failed_count == 0
        for path in fleet.paths:
            assert path.step_count > 0
            assert path.final_t > 0.05

    def test_fleet_bitwise_equals_solo_tracking(self, homotopy, fleet):
        solo = track_path(
            homotopy,
            homotopy.start_solutions()[0],
            tol=1e-6,
            order=6,
            max_steps=12,
            t_end=0.35,
            precision_ladder=(1, 2),
        )
        assert fleet.paths[0].steps == solo.steps

    def test_residual_bit_identity_along_tracked_points(self, homotopy, fleet, limbs):
        """The homotopy residual at a *tracked* expansion point:
        vectorized versus scalar reference, exact at d/dd/qd/od."""
        step = fleet.paths[0].steps[-1]
        point = list(step.point)
        rng = np.random.default_rng(8)
        tails = rng.standard_normal((homotopy.real_dimension, 3))
        vectorized = homotopy(
            [
                TruncatedSeries([x, *tail], limbs)
                for x, tail in zip(point, tails)
            ],
            TruncatedSeries.variable(3, limbs, head=step.t + step.step),
        )
        reference = homotopy(
            [
                ScalarSeries([x, *tail], limbs)
                for x, tail in zip(point, tails)
            ],
            ScalarSeries.variable(3, limbs, head=step.t + step.step),
        )
        for a, b in zip(vectorized, reference):
            expected = np.array([c.limbs for c in b.coefficients]).T
            assert np.array_equal(a.coefficients.data, expected)


class TestQuadraticHomotopy:
    """x^2 + 1 from the total-degree start x^2 - 1: the smallest
    homotopy whose roots are genuinely complex (+-i)."""

    def test_both_roots_found(self):
        from repro.poly import PolynomialSystem

        target = PolynomialSystem([[(1, (2,)), (1, (0,))]], 1)
        homotopy = Homotopy.total_degree(target, seed=3)
        fleet = homotopy.track_fleet(tol=1e-8, order=8, max_steps=48)
        assert fleet.reached_count == 2
        roots = sorted(
            float(extract_complex(path.final_point)[0].imag)
            for path in fleet.paths
        )
        assert roots == pytest.approx([-1.0, 1.0], abs=1e-8)
