"""Native complex homotopy backend: cross-backend identity suite.

The acceptance contract of the complex series backend: the native
complex tracker and the realified cross-check track the same homotopies
to the same endpoints (to working precision), the complex fleet is
bit-identical to complex solo tracking, the complex Jacobian matches
the realified block structure, and the ``embed_complex`` → track →
``extract_complex`` round trip is lossless.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.md.number import ComplexMultiDouble, MultiDouble
from repro.poly import Homotopy, PolynomialSystem, cyclic, katsura
from repro.poly.homotopy import embed_complex, extract_complex
from repro.series.complexvec import ComplexTruncatedSeries, ComplexVectorSeries
from repro.series.tracker import track_path
from repro.series.truncated import TruncatedSeries
from repro.vec.complexmd import MDComplexArray

TRACK = dict(tol=1e-6, order=8, max_steps=192, precision_ladder=(1, 2))


def _endpoints(homotopy, fleet):
    """Endpoints folded to complex, whatever the backend."""
    out = []
    for path in fleet.paths:
        if homotopy.backend == "complex":
            out.append([complex(value) for value in path.final_point])
        else:
            out.append(
                [value.as_complex() for value in extract_complex(path.final_point)]
            )
    return out


class TestComplexSystemEvaluation:
    def test_complex_point_matches_direct_evaluation(self, rng):
        system = cyclic(3)
        point = [complex(a, b) for a, b in rng.standard_normal((3, 2))]
        observed = system.evaluate(point, 2).to_complex()
        expected = []
        for eq in system.terms:
            total = 0j
            for coefficient, exponents in eq:
                product = complex(coefficient)
                for z, e in zip(point, exponents):
                    product *= z**e
                total += product
            expected.append(total)
        assert np.allclose(observed, expected)

    def test_complex_coefficients_accepted_natively(self):
        system = PolynomialSystem([[(1 + 2j, (2,)), (-1j, (0,))]], 1)
        value = system.evaluate([0.5], 2).to_complex()[0]
        assert value == pytest.approx((1 + 2j) * 0.25 - 1j)

    def test_complex_series_evaluation_matches_point(self, rng):
        system = katsura(2)
        point = [complex(a, b) for a, b in rng.standard_normal((3, 2))]
        series = [
            ComplexTruncatedSeries([value, 0.0, 0.0], 2) for value in point
        ]
        result = system.evaluate_series(series)
        assert isinstance(result, ComplexVectorSeries)
        heads = result.coefficients.to_complex()[:, 0]
        assert np.allclose(heads, system.evaluate(point, 2).to_complex())

    def test_scalar_reference_rejected_for_complex(self):
        from repro.series.reference import ScalarSeries

        system = PolynomialSystem([[(1j, (1,)), (1, (0,))]], 1)
        with pytest.raises(TypeError):
            system([ScalarSeries([1.0], 2)])


class TestComplexJacobianStructure:
    """The native complex Jacobian equals the realified block structure
    ``J_c = J_r[:n, :n] + i J_r[n:, :n]`` at embedded points."""

    def test_blocks_agree(self, rng):
        native = Homotopy.total_degree(cyclic(3), seed=7, backend="complex")
        realified = Homotopy.total_degree(cyclic(3), seed=7)
        assert native.gamma == realified.gamma
        point = [complex(a, b) for a, b in rng.standard_normal((3, 2))]
        for t0 in (0.0, 0.37, 1.0):
            j_c = native.jacobian(point, t0)
            assert isinstance(j_c, MDComplexArray)
            j_r = realified.jacobian(embed_complex(point), t0).to_double()
            n = native.dimension
            expected = j_r[:n, :n] + 1j * j_r[n:, :n]
            assert np.allclose(j_c.to_complex(), expected)

    def test_residual_matches_realified(self, rng):
        """H(x, t) on complex series arguments equals the realified
        residual recombined, coefficient for coefficient."""
        native = Homotopy.total_degree(cyclic(3), seed=7, backend="complex")
        realified = Homotopy.total_degree(cyclic(3), seed=7)
        coefficients = rng.standard_normal((3, 2, 4))  # (component, re/im, order)
        x_c = [
            ComplexTruncatedSeries(
                [complex(a, b) for a, b in zip(row[0], row[1])], 2
            )
            for row in coefficients
        ]
        x_r = [
            TruncatedSeries(list(coefficients[i, 0]), 2) for i in range(3)
        ] + [TruncatedSeries(list(coefficients[i, 1]), 2) for i in range(3)]
        t = TruncatedSeries.variable(3, 2, head=0.3)
        h_c = native(x_c, t)
        h_r = realified(x_r, t)
        n = 3
        for i in range(n):
            expected = (
                h_r[i].coefficients.to_double()
                + 1j * h_r[n + i].coefficients.to_double()
            )
            assert np.allclose(
                h_c[i].coefficients.to_complex(), expected, atol=1e-13
            )


class TestQuadraticBothBackends:
    """x^2 + 1: the smallest genuinely complex target, tracked by both
    backends to +-i."""

    @pytest.fixture(scope="class", params=["complex", "realified"])
    def fleet(self, request):
        target = PolynomialSystem([[(1, (2,)), (1, (0,))]], 1)
        homotopy = Homotopy.total_degree(target, seed=3, backend=request.param)
        return homotopy, homotopy.track_fleet(tol=1e-8, order=8, max_steps=48)

    def test_both_roots_found(self, fleet):
        homotopy, result = fleet
        assert result.reached_count == 2
        roots = sorted(
            round(z[0].imag, 8) for z in _endpoints(homotopy, result)
        )
        assert roots == pytest.approx([-1.0, 1.0], abs=1e-8)
        for path in result.paths:
            assert homotopy.target_residual(path.final_point) < 1e-10


class TestCyclic3NativeFleet:
    """The acceptance criterion: the native complex fleet finds all six
    cyclic-3 roots with ~1e-16 residuals at dd, and agrees per path with
    the realified cross-check."""

    @pytest.fixture(scope="class")
    def native(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7, backend="complex")
        return homotopy, homotopy.track_fleet(**TRACK)

    @pytest.fixture(scope="class")
    def realified(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7)
        return homotopy, homotopy.track_fleet(**TRACK)

    def test_all_six_roots_found(self, native):
        homotopy, fleet = native
        assert fleet.batch == 6
        assert fleet.reached_count == 6
        assert fleet.failed_count == 0
        for path in fleet.paths:
            assert homotopy.target_residual(path.final_point) < 1e-12
        rounded = {
            tuple(complex(round(z.real, 6), round(z.imag, 6)) for z in endpoint)
            for endpoint in _endpoints(homotopy, fleet)
        }
        assert len(rounded) == 6  # six distinct roots

    def test_endpoints_agree_with_realified(self, native, realified):
        h_native, f_native = native
        h_real, f_real = realified
        assert f_real.reached_count == 6
        for z_c, z_r in zip(
            _endpoints(h_native, f_native), _endpoints(h_real, f_real)
        ):
            assert max(abs(a - b) for a, b in zip(z_c, z_r)) < 1e-8

    def test_native_needs_fewer_steps(self, native, realified):
        """The structural payoff the benchmark measures: the native
        n-dimensional complex expansion takes larger steps than the
        realified 2n-dimensional detour."""
        _, f_native = native
        _, f_real = realified
        native_steps = sum(p.step_count for p in f_native.paths)
        realified_steps = sum(p.step_count for p in f_real.paths)
        assert native_steps < realified_steps

    def test_complex_fleet_bitwise_equals_complex_solo(self, native):
        homotopy, fleet = native
        solo = track_path(
            homotopy, homotopy.start_solutions()[0], **TRACK
        )
        assert fleet.paths[0].steps == solo.steps
        assert fleet.paths[0].reached == solo.reached
        for a, b in zip(fleet.paths[0].final_point, solo.final_point):
            assert complex(a) == complex(b)
            assert a.real.limbs == b.real.limbs
            assert a.imag.limbs == b.imag.limbs


class TestKatsura2BothBackends:
    def test_endpoints_agree(self):
        native = Homotopy.total_degree(katsura(2), seed=11, backend="complex")
        realified = Homotopy.total_degree(katsura(2), seed=11)
        f_native = native.track_fleet(tol=1e-6, order=8, max_steps=96,
                                      precision_ladder=(2,))
        f_real = realified.track_fleet(tol=1e-6, order=8, max_steps=96,
                                       precision_ladder=(2,))
        assert f_native.reached_count == f_real.reached_count == 4
        for z_c, z_r in zip(
            _endpoints(native, f_native), _endpoints(realified, f_real)
        ):
            assert max(abs(a - b) for a, b in zip(z_c, z_r)) < 1e-8


class TestLosslessExtraction:
    """The extract_complex bugfix: multiple double endpoint coordinates
    keep every limb through the realified round trip."""

    def test_roundtrip_is_lossless_at_qd(self):
        third = MultiDouble(1, 4) / MultiDouble(3, 4)
        seventh = MultiDouble(1, 4) / MultiDouble(7, 4)
        realified = [third, seventh, -seventh, third]
        extracted = extract_complex(realified)
        assert all(isinstance(z, ComplexMultiDouble) for z in extracted)
        # every limb survives — no float() truncation anywhere
        assert extracted[0].real.limbs == third.limbs
        assert extracted[0].imag.limbs == (-seventh).limbs
        assert extracted[1].real.limbs == seventh.limbs
        assert extracted[1].imag.limbs == third.limbs
        # the rounded convenience view is explicit
        assert extracted[0].as_complex() == complex(float(third), float(-seventh))

    def test_plain_floats_still_work(self):
        point = [1.5 - 2j, 0.25j, -3.0]
        assert extract_complex(embed_complex(point)) == [complex(v) for v in point]

    def test_embed_preserves_multidouble_components(self):
        third = MultiDouble(1, 4) / MultiDouble(3, 4)
        point = [ComplexMultiDouble(third, -third)]
        embedded = embed_complex(point)
        assert embedded[0].limbs == third.limbs
        assert embedded[1].limbs == (-third).limbs
        back = extract_complex(embedded)
        assert back[0].real.limbs == third.limbs
        assert back[0].imag.limbs == (-third).limbs

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            extract_complex([1.0, 2.0, 3.0])

    def test_tracked_endpoint_precision_survives(self):
        """A dd-tracked realified endpoint reports dd coordinates: the
        extracted components carry the full limb tuples of the tracked
        MultiDoubles (pre-fix, everything collapsed to one double)."""
        homotopy = Homotopy.total_degree(
            PolynomialSystem([[(1, (2,)), (1, (0,))]], 1), seed=3
        )
        result = homotopy.track(
            tol=1e-8, order=8, max_steps=96, precision_ladder=(2,)
        )
        assert result.reached
        extracted = extract_complex(result.final_point)
        assert extracted[0].precision.limbs == 2
        assert extracted[0].real.limbs == result.final_point[0].limbs
        assert extracted[0].imag.limbs == result.final_point[1].limbs


class TestComplexCoefficientPromotion:
    """A complex-coefficient system promotes even an all-real start
    point to the complex staircase (the system's residuals are complex
    series regardless of the point)."""

    @pytest.fixture()
    def system(self):
        # (1+i) x^2 - (2+i)(1 + t): root sqrt((2+i)/(1+i)) at t = 0
        return PolynomialSystem(
            [[(1 + 1j, (2, 0)), (-2 - 1j, (0, 0)), (-2 - 1j, (0, 1))]], 2
        )

    def test_property_reported(self, system):
        assert system.complex_coefficients
        assert not cyclic(3).complex_coefficients

    def test_newton_series_promotes_real_start(self, system):
        from repro.series.newton import newton_series

        result = newton_series(system, [1.0], 4, 2)
        assert isinstance(result.vector, ComplexVectorSeries)
        assert all(
            isinstance(s, ComplexTruncatedSeries) for s in result.series
        )

    def test_tracker_promotes_real_start(self, system):
        root = ((2 + 1j) / (1 + 1j)) ** 0.5
        result = track_path(
            system, [root.real], order=6, tol=1e-8, max_steps=32
        )
        assert result.reached
        assert all(
            isinstance(v, ComplexMultiDouble) for v in result.final_point
        )

    def test_fleet_promotes_mixed_starts(self, system):
        from repro.batch.fleet import track_paths

        root = ((2 + 1j) / (1 + 1j)) ** 0.5
        fleet = track_paths(
            system,
            [[root.real], [complex(root)]],
            order=6,
            tol=1e-8,
            max_steps=32,
        )
        assert fleet.reached_count == 2


class TestFullPrecisionResiduals:
    """target_residual evaluates at the endpoint's own precision — a
    dd/qd-tracked point is not rounded through float()/complex() on the
    way into the residual."""

    def test_realified_resolve_keeps_multidoubles(self):
        homotopy = Homotopy.total_degree(cyclic(2), seed=7)
        point = [MultiDouble(1, 4) / MultiDouble(3, 4)] * 4
        resolved = homotopy._resolve_start(point)
        assert all(isinstance(v, MultiDouble) for v in resolved)
        assert resolved[0].limbs == point[0].limbs

    def test_complex_resolve_keeps_multidoubles(self):
        homotopy = Homotopy.total_degree(cyclic(2), seed=7, backend="complex")
        third = MultiDouble(1, 4) / MultiDouble(3, 4)
        resolved = homotopy._resolve_start([third, 1 + 1j])
        assert isinstance(resolved[0], ComplexMultiDouble)
        assert resolved[0].real.limbs == third.limbs

    def test_residual_sees_beyond_double(self):
        """At the exact dd root of x^2 + 1 the residual must drop far
        below double precision's 1e-16 floor — the old float() cast
        capped it there."""
        homotopy = Homotopy.total_degree(
            PolynomialSystem([[(1, (2,)), (1, (0,))]], 1), seed=3
        )
        result = homotopy.track(
            tol=1e-8, order=8, max_steps=96, precision_ladder=(2,)
        )
        assert result.reached
        assert homotopy.target_residual(result.final_point) < 1e-20


class TestComplexStartsDispatch:
    def test_resolve_start_accepts_both_shapes(self):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7, backend="complex")
        native = homotopy._resolve_start([1 + 1j, 2, 3 - 1j])
        assert native == [1 + 1j, 2 + 0j, 3 - 1j]
        from_realified = homotopy._resolve_start([1.0, 2.0, 3.0, 1.0, 0.0, -1.0])
        assert [complex(z) for z in from_realified] == [1 + 1j, 2 + 0j, 3 - 1j]
        with pytest.raises(ValueError):
            homotopy._resolve_start([1.0, 2.0])

    def test_start_solutions_are_complex_points(self):
        homotopy = Homotopy.total_degree(cyclic(2), seed=7, backend="complex")
        for start in homotopy.start_solutions():
            assert len(start) == 2
            assert all(isinstance(v, complex) for v in start)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Homotopy.total_degree(cyclic(2), backend="quaternionic")
