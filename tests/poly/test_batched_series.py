"""Fleet-wide batched series evaluation: one power table, ``b`` paths.

The continuous scheduler's supporting contract: evaluating a whole
fleet's series arguments through one shared power table is
**bit-identical, slice for slice**, to evaluating every path alone —
and costs exactly the launch sequence of a single evaluation (flat in
``b``; only the grids grow).  Covered here:

* ``evaluate_series`` on raw ``(b, variables, K+1)`` limb planes, real
  and complex, vs the loop-per-path ``VectorSeries`` evaluation;
* ``jacobian_series`` the same way on ``(b, equations, variables,
  K+1)`` output planes;
* ``residual_fleet`` of parametric systems and of both ``Homotopy``
  backends vs the per-path residual adapters the tracker uses;
* launch accounting: the numeric batched trace is launch-identical to
  ``polynomial_evaluation_trace(batch=b)``, launch counts stay flat in
  ``b``, and ``counts(batch=b)`` scales operations without adding
  launches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpu.kernel import KernelTrace
from repro.md.constants import get_precision
from repro.perf.costmodel import polynomial_evaluation_trace
from repro.poly import Homotopy, PolynomialSystem, cyclic, katsura
from repro.series.complexvec import ComplexVectorSeries
from repro.series.truncated import TruncatedSeries
from repro.series.vector import VectorSeries
from repro.vec.complexmd import MDComplexArray
from repro.vec.mdarray import MDArray

BATCH = 5
ORDER = 4
LIMBS = 2


def real_planes(batch, variables, order, limbs, seed=0):
    """Deterministic batched coefficient planes (heads only, so every
    slice is a normalized multiple-double series)."""
    rng = np.random.default_rng(seed)
    data = np.zeros((limbs, batch, variables, order + 1))
    data[0] = rng.standard_normal((batch, variables, order + 1))
    return MDArray(data)


def complex_planes(batch, variables, order, limbs, seed=0):
    return MDComplexArray(
        real_planes(batch, variables, order, limbs, seed=seed),
        real_planes(batch, variables, order, limbs, seed=seed + 1),
    )


def path_vector(planes, p):
    """Path ``p`` of a batched plane stack as an unbatched series vector."""
    if isinstance(planes, MDComplexArray):
        return ComplexVectorSeries(
            MDComplexArray(
                MDArray(planes.real.data[:, p].copy()),
                MDArray(planes.imag.data[:, p].copy()),
            )
        )
    return VectorSeries(MDArray(planes.data[:, p].copy()))


def assert_planes_equal(batched, p, reference):
    """Slice ``p`` of a batched result equals the unbatched planes, bitwise."""
    if isinstance(batched, MDComplexArray):
        assert np.array_equal(batched.real.data[:, p], reference.real.data)
        assert np.array_equal(batched.imag.data[:, p], reference.imag.data)
    else:
        assert np.array_equal(batched.data[:, p], reference.data)


class TestBatchedEvaluationBitIdentity:
    @pytest.mark.parametrize(
        "system", [katsura(3), cyclic(4)], ids=["katsura3", "cyclic4"]
    )
    def test_real_slices_match_loop_per_path(self, system):
        planes = real_planes(BATCH, system.variables, ORDER, LIMBS)
        batched = system.evaluate_series(planes)
        assert batched.shape == (BATCH, system.equations, ORDER + 1)
        for p in range(BATCH):
            reference = system.evaluate_series(path_vector(planes, p))
            assert_planes_equal(batched, p, reference.coefficients)

    @pytest.mark.parametrize(
        "system", [katsura(3), cyclic(4)], ids=["katsura3", "cyclic4"]
    )
    def test_complex_slices_match_loop_per_path(self, system):
        planes = complex_planes(BATCH, system.variables, ORDER, LIMBS)
        batched = system.evaluate_series(planes)
        assert isinstance(batched, MDComplexArray)
        for p in range(BATCH):
            reference = system.evaluate_series(path_vector(planes, p))
            assert_planes_equal(batched, p, reference.coefficients)

    def test_complex_coefficient_system_promotes_real_planes(self):
        """A complex-coefficient system evaluates real batched planes
        natively complex, exactly like its unbatched promotion."""
        system = PolynomialSystem(
            [
                [(1 + 2j, (2, 0)), (-1, (0, 0))],
                [(1, (1, 1)), (0.5j, (0, 0))],
            ]
        )
        planes = real_planes(BATCH, system.variables, ORDER, LIMBS)
        batched = system.evaluate_series(planes)
        assert isinstance(batched, MDComplexArray)
        for p in range(BATCH):
            reference = system.evaluate_series(path_vector(planes, p))
            assert_planes_equal(batched, p, reference.coefficients)

    def test_wrong_variable_count_rejected(self):
        system = katsura(3)
        planes = real_planes(BATCH, system.variables - 1, ORDER, LIMBS)
        with pytest.raises(ValueError):
            system.evaluate_series(planes)


class TestBatchedJacobianBitIdentity:
    @pytest.mark.parametrize(
        "make",
        [lambda: real_planes(BATCH, 4, ORDER, LIMBS),
         lambda: complex_planes(BATCH, 4, ORDER, LIMBS)],
        ids=["real", "complex"],
    )
    def test_slices_match_loop_per_path(self, make):
        system = katsura(3)
        assert system.variables == 4
        planes = make()
        batched = system.jacobian_series(planes)
        assert batched.shape == (
            BATCH,
            system.equations,
            system.variables,
            ORDER + 1,
        )
        for p in range(BATCH):
            reference = system.jacobian_series(path_vector(planes, p))
            assert_planes_equal(batched, p, reference)


class TestResidualFleet:
    def test_parametric_system_appends_the_parameter(self):
        """A system with one more variable than unknowns receives the
        per-path parameter series ``t_p + s`` as its last variable —
        the same local shift the tracker's residual adapter applies."""
        system = PolynomialSystem(
            [
                [(1, (2, 0, 0)), (-1, (0, 0, 1)), (-1, (0, 0, 0))],
                [(1, (1, 1, 1)), (-2, (0, 1, 0))],
            ]
        )
        prec = get_precision(LIMBS)
        planes = real_planes(BATCH, 2, ORDER, LIMBS)
        t_heads = [0.0, 0.125, 0.5, 0.75, 1.0]
        batched = system.residual_fleet(planes, t_heads)
        for p, t0 in enumerate(t_heads):
            components = path_vector(planes, p).components()
            t_series = TruncatedSeries.variable(ORDER, prec, head=t0)
            reference = system.evaluate_series([*components, t_series])
            assert_planes_equal(batched, p, reference.coefficients)

    @pytest.mark.parametrize("backend", ["realified", "complex"])
    def test_homotopy_slices_match_the_residual_adapter(self, backend):
        homotopy = Homotopy.total_degree(cyclic(3), seed=7, backend=backend)
        prec = get_precision(LIMBS)
        dimension = homotopy.tracking_dimension
        if backend == "complex":
            planes = complex_planes(BATCH, dimension, ORDER, LIMBS)
        else:
            planes = real_planes(BATCH, dimension, ORDER, LIMBS)
        t_heads = [0.0, 0.25, 0.5, 0.875, 1.0]
        batched = homotopy.residual_fleet(planes, t_heads)
        assert batched.shape == (BATCH, dimension, ORDER + 1)
        for p, t0 in enumerate(t_heads):
            components = path_vector(planes, p).components()
            t_series = TruncatedSeries.variable(ORDER, prec, head=t0)
            residuals = homotopy(components, t_series)
            if backend == "complex":
                reference = ComplexVectorSeries.from_components(residuals)
            else:
                reference = VectorSeries.from_components(residuals)
            assert_planes_equal(batched, p, reference.coefficients)


class TestBatchedLaunchAccounting:
    def test_numeric_trace_matches_analytic_batched_trace(self):
        system = katsura(3)
        planes = real_planes(BATCH, system.variables, ORDER, LIMBS)
        numeric = KernelTrace("V100")
        system.evaluate_series(planes, trace=numeric)
        analytic = polynomial_evaluation_trace(
            system.equations,
            system.variables,
            system.distinct_products,
            system.max_degree,
            system._term_slots,
            LIMBS,
            order=ORDER,
            batch=BATCH,
        )
        assert [l.name for l in numeric.launches] == [
            l.name for l in analytic.launches
        ]
        for observed, expected in zip(numeric.launches, analytic.launches):
            assert observed.blocks == expected.blocks
            assert observed.tally.multiplications == expected.tally.multiplications
            assert observed.tally.additions == expected.tally.additions

    def test_launch_count_flat_in_batch(self):
        system = katsura(3)
        single = KernelTrace("V100")
        system.evaluate_series(
            path_vector(real_planes(BATCH, system.variables, ORDER, LIMBS), 0),
            trace=single,
        )
        batched = KernelTrace("V100")
        system.evaluate_series(
            real_planes(BATCH, system.variables, ORDER, LIMBS), trace=batched
        )
        assert [l.name for l in batched.launches] == [
            l.name for l in single.launches
        ]

    def test_counts_scale_operations_not_launches(self):
        system = katsura(3)
        base = system.counts(order=ORDER)
        wide = system.counts(order=ORDER, batch=BATCH)
        assert wide.combined.mul == pytest.approx(BATCH * base.combined.mul)
        assert wide.combined.add == pytest.approx(BATCH * base.combined.add)
        assert wide.combined.launches == base.combined.launches
        with pytest.raises(ValueError):
            system.counts(batch=0)
