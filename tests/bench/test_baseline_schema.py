"""The baseline checker itself: schema validation and drift policing.

``benchmarks/check_baselines.py`` gates CI on the committed
``BENCH_*.json`` performance baselines.  These tests pin its contract
without invoking git or touching the real baselines: the validator on
synthetic payloads (envelope keys, suite/filename agreement,
null-tolerant ``environment``), the drift rule on synthetic change
lists, and a full run over the repo's committed baselines — which must
always validate, or CI is red before any code change.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
BENCH_DIR = REPO_ROOT / "benchmarks"

spec = importlib.util.spec_from_file_location(
    "check_baselines", BENCH_DIR / "check_baselines.py"
)
check_baselines = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_baselines)


def envelope(**overrides):
    """A minimal valid baseline payload, overridable per test."""
    payload = {
        "suite": "demo",
        "git_sha": "a" * 40,
        "python": "3.11.7",
        "updated": "2026-08-07T00:00:00Z",
        "entries": {"case": {"seconds": 1.0, "floor": 1.3}},
    }
    payload.update(overrides)
    return payload


def write_baseline(tmp_path, name="BENCH_demo.json", payload=None):
    path = tmp_path / name
    path.write_text(json.dumps(payload if payload is not None else envelope()))
    return path


class TestSchema:
    def test_valid_baseline_passes(self, tmp_path):
        path = write_baseline(tmp_path)
        assert check_baselines.validate_baseline(path) == []

    def test_environment_is_null_tolerant(self, tmp_path):
        """Old baselines predate the environment block: absent is fine,
        and a present block may omit exec_backend."""
        no_env = write_baseline(tmp_path)
        assert check_baselines.validate_baseline(no_env) == []
        with_env = write_baseline(
            tmp_path,
            name="BENCH_demo2.json",
            payload=envelope(suite="demo2", environment={"python": "3.11.7"}),
        )
        assert check_baselines.validate_baseline(with_env) == []

    def test_environment_must_be_mapping_when_present(self, tmp_path):
        path = write_baseline(tmp_path, payload=envelope(environment="generic"))
        problems = check_baselines.validate_baseline(path)
        assert any("environment" in p for p in problems)

    @pytest.mark.parametrize("key", ["suite", "git_sha", "python", "updated", "entries"])
    def test_missing_required_key_fails(self, tmp_path, key):
        payload = envelope()
        del payload[key]
        path = write_baseline(tmp_path, payload=payload)
        problems = check_baselines.validate_baseline(path)
        assert any(repr(key) in p for p in problems)

    def test_suite_must_match_filename(self, tmp_path):
        path = write_baseline(
            tmp_path, name="BENCH_other.json", payload=envelope(suite="demo")
        )
        problems = check_baselines.validate_baseline(path)
        assert any("does not match filename" in p for p in problems)

    def test_empty_entries_fail(self, tmp_path):
        path = write_baseline(tmp_path, payload=envelope(entries={}))
        problems = check_baselines.validate_baseline(path)
        assert any("entries" in p for p in problems)

    def test_non_dict_entry_fails(self, tmp_path):
        path = write_baseline(tmp_path, payload=envelope(entries={"case": 3.5}))
        problems = check_baselines.validate_baseline(path)
        assert any("'case'" in p for p in problems)

    def test_unreadable_json_fails(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        problems = check_baselines.validate_baseline(path)
        assert problems and "unreadable" in problems[0]

    def test_entry_stamps_are_null_tolerant(self, tmp_path):
        """Entries recorded before per-entry stamps existed omit them;
        stamped entries validate too."""
        unstamped = write_baseline(tmp_path)
        assert check_baselines.validate_baseline(unstamped) == []
        stamped = write_baseline(
            tmp_path,
            name="BENCH_demo2.json",
            payload=envelope(
                suite="demo2",
                entries={
                    "case": {
                        "seconds": 1.0,
                        "git_sha": "b" * 40,
                        "recorded_at": "2026-08-07T00:00:00Z",
                    }
                },
            ),
        )
        assert check_baselines.validate_baseline(stamped) == []

    @pytest.mark.parametrize("stamp", ["git_sha", "recorded_at"])
    @pytest.mark.parametrize("bad", ["", None, 7])
    def test_present_entry_stamp_must_be_nonempty_string(self, tmp_path, stamp, bad):
        payload = envelope(entries={"case": {"seconds": 1.0, stamp: bad}})
        path = write_baseline(tmp_path, payload=payload)
        problems = check_baselines.validate_baseline(path)
        assert any(repr(stamp) in p and "'case'" in p for p in problems)


class TestDriftRule:
    def test_baseline_with_code_change_is_allowed(self):
        changed = [
            "benchmarks/BENCH_fleet.json",
            "benchmarks/bench_fleet_scheduler.py",
        ]
        assert check_baselines.drift_problems(changed) == []

    def test_baseline_alone_is_drift(self):
        problems = check_baselines.drift_problems(["benchmarks/BENCH_fleet.json"])
        assert len(problems) == 1
        assert "BENCH_fleet.json" in problems[0]

    def test_baseline_with_unrelated_change_is_still_drift(self):
        """A source-tree edit does not license a baseline refresh; the
        matching change must live under benchmarks/."""
        changed = ["benchmarks/BENCH_fleet.json", "src/repro/batch/fleet.py"]
        assert len(check_baselines.drift_problems(changed)) == 1

    def test_no_baseline_changes_no_drift(self):
        changed = ["src/repro/batch/fleet.py", "benchmarks/harness.py"]
        assert check_baselines.drift_problems(changed) == []


class TestCommittedBaselines:
    def test_repo_baselines_all_validate(self):
        paths = check_baselines.baseline_paths(BENCH_DIR)
        assert paths, "repo must ship committed BENCH_*.json baselines"
        for path in paths:
            assert check_baselines.validate_baseline(path) == []

    def test_fleet_baseline_exists_with_floor(self):
        """The continuous-scheduler suite ships its first baseline."""
        payload = json.loads((BENCH_DIR / "BENCH_fleet.json").read_text())
        entry = payload["entries"]["straggler_fleet_b32_dd_od"]
        assert entry["speedup"] >= entry["floor"] == 1.3
        assert entry["occupancy"] > 0.5
        assert entry["straggler_steps"] == 1

    def test_main_schema_only_passes_on_repo(self, capsys):
        assert check_baselines.main([]) == 0
        assert "OK" in capsys.readouterr().out
