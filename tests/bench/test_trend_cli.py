"""The perf-trend CLI: ingestion runs, the report, and the CI gate.

``benchmarks/trend.py`` is what the ``perf-trend`` CI job executes.
These tests run its ``main()`` over the repo's committed baselines
(fresh history never fails the gate) and over a sandboxed baseline
directory replaying four CI runs into one persisted store — the last
run with doubled seconds, which must trip ``--fail-on-regress``.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_trend", REPO_ROOT / "benchmarks" / "trend.py"
)
trend = importlib.util.module_from_spec(spec)
spec.loader.exec_module(trend)


def write_run(bench_dir: Path, run: int, seconds: float) -> None:
    """One simulated CI run's BENCH_demo.json snapshot."""
    stamp = f"2026-08-{run:02d}T00:00:00Z"
    payload = {
        "suite": "demo",
        "git_sha": f"{run:040x}",
        "python": "3.11.7",
        "updated": stamp,
        "environment": {"exec_backend": "generic"},
        "entries": {
            "case": {
                "seconds": seconds,
                "speedup": 4.0,
                "floor": 1.3,
                "shape": {"n": 8},
                "git_sha": f"{run:040x}",
                "recorded_at": stamp,
            }
        },
    }
    (bench_dir / "BENCH_demo.json").write_text(json.dumps(payload))


def test_committed_baselines_pass_the_gate(tmp_path, capsys):
    """Fresh history is insufficient, never regress: exit 0."""
    code = trend.main(
        ["--store", str(tmp_path / "store.jsonl"), "--fail-on-regress"]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "Perf-trend report" in out
    assert "0 regress" in out
    assert (tmp_path / "store.jsonl").exists()


def test_store_accumulates_without_fabricating_history(tmp_path, capsys):
    """Re-running over unchanged baselines appends nothing."""
    store = tmp_path / "store.jsonl"
    assert trend.main(["--store", str(store)]) == 0
    first = store.read_text()
    assert trend.main(["--store", str(store)]) == 0
    assert store.read_text() == first
    capsys.readouterr()


def test_synthetic_slowdown_fails_the_gate(tmp_path, capsys):
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    store = tmp_path / "store.jsonl"
    report = tmp_path / "trend_report.txt"
    base = ["--store", str(store), "--bench-dir", str(bench_dir), "--fail-on-regress"]

    # three clean runs build the history
    for run in range(1, 4):
        write_run(bench_dir, run, seconds=1.0)
        assert trend.main(base) == 0
    capsys.readouterr()

    # the fourth run doubles the measured seconds: regress, exit 1
    write_run(bench_dir, 4, seconds=2.0)
    code = trend.main(base + ["--report", str(report)])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESS" in captured.out
    assert "regressed" in captured.err
    assert "REGRESS" in report.read_text()

    # without the gate flag the same state only reports
    assert trend.main(["--store", str(store), "--bench-dir", str(bench_dir)]) == 0
    capsys.readouterr()


def test_threshold_flags_reach_the_judge(tmp_path, capsys):
    """A 2x slowdown passes a 3x regress threshold (but still warns)."""
    bench_dir = tmp_path / "bench"
    bench_dir.mkdir()
    store = tmp_path / "store.jsonl"
    for run in range(1, 4):
        write_run(bench_dir, run, seconds=1.0)
        trend.main(["--store", str(store), "--bench-dir", str(bench_dir)])
    write_run(bench_dir, 4, seconds=2.0)
    code = trend.main(
        [
            "--store",
            str(store),
            "--bench-dir",
            str(bench_dir),
            "--fail-on-regress",
            "--regress-ratio",
            "3.0",
        ]
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "1 warn" in out
