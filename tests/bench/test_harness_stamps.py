"""Per-entry provenance stamps written by ``benchmarks/harness.py``.

The suite-level ``git_sha``/``updated`` pair only dates the *file*;
in a suite whose entries were measured at different commits it
misattributes every entry but the newest.  ``harness.record`` therefore
stamps each entry with its own ``git_sha``/``recorded_at`` — the pair
the trend store (:mod:`repro.obs.store`) orders run history by.  These
tests pin that contract against a ``BENCH_OUTPUT_DIR`` sandbox, never
the committed baselines.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "bench_harness", REPO_ROOT / "benchmarks" / "harness.py"
)
harness = importlib.util.module_from_spec(spec)
spec.loader.exec_module(harness)


def record_sandboxed(tmp_path, monkeypatch, **kwargs):
    monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
    return harness.record("demo", "case", **kwargs)


def test_entry_carries_its_own_stamps(tmp_path, monkeypatch):
    entry = record_sandboxed(tmp_path, monkeypatch, seconds=1.5, floor=1.2)
    data = json.loads((tmp_path / "BENCH_demo.json").read_text())
    written = data["entries"]["case"]
    assert written == entry
    # the per-entry stamps mirror the suite envelope at record time
    assert written["git_sha"] == data["git_sha"]
    assert written["recorded_at"] == data["updated"]
    assert written["git_sha"]
    assert written["recorded_at"]
    # the measurement fields survive alongside the stamps
    assert written["seconds"] == 1.5
    assert written["floor"] == 1.2


def test_stamps_do_not_leak_into_other_entries(tmp_path, monkeypatch):
    """Re-recording one entry leaves its siblings' stamps untouched."""
    monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
    harness.record("demo", "first", seconds=1.0)
    path = tmp_path / "BENCH_demo.json"
    data = json.loads(path.read_text())
    # age the sibling as if measured at an older commit
    data["entries"]["first"]["git_sha"] = "f" * 40
    data["entries"]["first"]["recorded_at"] = "2020-01-01T00:00:00Z"
    path.write_text(json.dumps(data))

    harness.record("demo", "second", seconds=2.0)
    data = json.loads(path.read_text())
    assert data["entries"]["first"]["git_sha"] == "f" * 40
    assert data["entries"]["first"]["recorded_at"] == "2020-01-01T00:00:00Z"
    assert data["entries"]["second"]["recorded_at"] == data["updated"]


def test_fields_cannot_spoof_stamps(tmp_path, monkeypatch):
    """Caller-supplied git_sha/recorded_at fields are overwritten by
    the harness' own stamps — provenance is not self-reported."""
    entry = record_sandboxed(
        tmp_path, monkeypatch, seconds=1.0, git_sha="spoofed", recorded_at="never"
    )
    assert entry["git_sha"] != "spoofed"
    assert entry["recorded_at"] != "never"


def test_telemetry_attachment_still_stamped(tmp_path, monkeypatch):
    summary = {"counters": {"steps": 3}, "histograms": {}}
    entry = record_sandboxed(tmp_path, monkeypatch, seconds=1.0, telemetry=summary)
    assert entry["telemetry"] == summary
    assert entry["git_sha"]
    assert entry["recorded_at"]
