"""Batched-vs-looped throughput: the payoff of the ``repro.batch`` layer.

The acceptance contract of the batched execution layer is measured
here: a batch of ``b = 32`` small QR factorizations at double double
precision must run at least **5×** faster through
:func:`repro.batch.qr.batched_blocked_qr` (one vectorized limb launch
sequence for the whole batch) than through a Python loop over
:func:`repro.core.blocked_qr.blocked_qr` — while producing
**bit-identical** factors, which is asserted before any timing (a
speedup over a wrong kernel is worthless).

All floor assertions run in the CI ``perf-smoke`` job (they are *not*
marked heavy, so ``--quick`` keeps them); the parametrized
pytest-benchmark sweeps are heavy.  Every measured floor is recorded
through :mod:`harness` into ``BENCH_batch.json`` (timings, speedups,
flop tallies, git SHA) so the throughput trajectory is tracked across
PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.batch import batched_blocked_qr, batched_least_squares
from repro.core.blocked_qr import blocked_qr
from repro.core.least_squares import lstsq
from repro.perf.costmodel import batched_lstsq_trace, batched_qr_trace, qr_trace
from repro.vec import batched as vb
from repro.vec import random as mdrandom

#: The acceptance-contract floor: batched QR at b=32, dd, vs a loop.
QR_SPEEDUP_FLOOR = 5.0

#: Floor for the combined least squares solver (same batching win).
LSTSQ_SPEEDUP_FLOOR = 5.0

BATCH = 32
DIM = 8
TILE = 4
LIMBS = 2  # double double — the headline precision of the contract


def _random_batch(rows, cols, limbs, count, seed=20220320):
    rng = np.random.default_rng(seed)
    return [mdrandom.random_matrix(rows, cols, limbs, rng) for _ in range(count)]


def test_batched_qr_throughput_floor():
    """Acceptance contract: >= 5x at b=32, dd, vs looped ``blocked_qr``
    — with bit-identical factors (measured 15-19x on the development
    machine)."""
    matrices = _random_batch(DIM, DIM, LIMBS, BATCH)
    stacked = vb.stack(matrices)

    # identical bits first
    batched = batched_blocked_qr(stacked, TILE)
    for index, matrix in enumerate(matrices):
        reference = blocked_qr(matrix, TILE)
        assert np.array_equal(batched.Q.data[:, index], reference.Q.data)
        assert np.array_equal(batched.R.data[:, index], reference.R.data)

    loop_seconds = harness.best_seconds(
        lambda: [blocked_qr(matrix, TILE) for matrix in matrices], repeats=3
    )
    batched_seconds = harness.best_seconds(
        lambda: batched_blocked_qr(stacked, TILE), repeats=5
    )
    speedup = loop_seconds / batched_seconds

    model = batched_qr_trace(BATCH, DIM, DIM, TILE, LIMBS)
    harness.record(
        "batch",
        f"qr_b{BATCH}_dim{DIM}_{LIMBS}d",
        shape=harness.problem_shape(n=DIM, batch=BATCH),
        batch=BATCH,
        dim=DIM,
        tile=TILE,
        limbs=LIMBS,
        loop_seconds=loop_seconds,
        batched_seconds=batched_seconds,
        speedup=speedup,
        floor=QR_SPEEDUP_FLOOR,
        md_flops=model.total_flops(),
        launches=model.kernel_launch_count,
        launches_looped=BATCH * qr_trace(DIM, DIM, TILE, LIMBS).kernel_launch_count,
    )
    print(
        f"\nb={BATCH} dim={DIM} dd QR: loop {loop_seconds * 1e3:.1f} ms, "
        f"batched {batched_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= QR_SPEEDUP_FLOOR


def test_batched_lstsq_throughput_floor():
    """The combined QR + back substitution solver batches just as well."""
    matrices = _random_batch(DIM + 2, DIM, LIMBS, BATCH)
    rng = np.random.default_rng(42)
    rhs = [mdrandom.random_vector(DIM + 2, LIMBS, rng) for _ in range(BATCH)]
    stacked = vb.stack(matrices)
    stacked_rhs = vb.stack(rhs)

    batched = batched_least_squares(stacked, stacked_rhs, tile_size=TILE)
    for index in range(BATCH):
        reference = lstsq(matrices[index], rhs[index], tile_size=TILE)
        assert np.array_equal(batched.x.data[:, index], reference.x.data)

    loop_seconds = harness.best_seconds(
        lambda: [
            lstsq(matrices[i], rhs[i], tile_size=TILE) for i in range(BATCH)
        ],
        repeats=3,
    )
    batched_seconds = harness.best_seconds(
        lambda: batched_least_squares(stacked, stacked_rhs, tile_size=TILE),
        repeats=5,
    )
    speedup = loop_seconds / batched_seconds

    qr_model, bs_model = batched_lstsq_trace(BATCH, DIM + 2, DIM, TILE, LIMBS)
    harness.record(
        "batch",
        f"lstsq_b{BATCH}_{DIM + 2}x{DIM}_{LIMBS}d",
        shape=harness.problem_shape(n=DIM, batch=BATCH, rows=DIM + 2),
        batch=BATCH,
        rows=DIM + 2,
        cols=DIM,
        tile=TILE,
        limbs=LIMBS,
        loop_seconds=loop_seconds,
        batched_seconds=batched_seconds,
        speedup=speedup,
        floor=LSTSQ_SPEEDUP_FLOOR,
        md_flops=qr_model.total_flops() + bs_model.total_flops(),
        launches=qr_model.kernel_launch_count + bs_model.kernel_launch_count,
    )
    print(
        f"\nb={BATCH} {DIM + 2}x{DIM} dd lstsq: loop {loop_seconds * 1e3:.1f} ms, "
        f"batched {batched_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= LSTSQ_SPEEDUP_FLOOR


def test_launch_count_flat_in_batch_size():
    """The batching contract on the launch records themselves: launches
    flat in b, flops linear in b."""
    base = qr_trace(DIM, DIM, TILE, LIMBS)
    for batch in (1, 4, 32):
        model = batched_qr_trace(batch, DIM, DIM, TILE, LIMBS)
        assert model.kernel_launch_count == base.kernel_launch_count
        assert model.total_flops() == pytest.approx(batch * base.total_flops())


@pytest.mark.heavy
@pytest.mark.parametrize("limbs", [2, 4], ids=["2d", "4d"])
@pytest.mark.parametrize("batch", [8, 32])
def test_batched_qr_sweep(benchmark, batch, limbs):
    """Timing sweep of the batched QR over batch size x precision."""
    matrices = _random_batch(DIM, DIM, limbs, batch)
    stacked = vb.stack(matrices)
    result = benchmark(lambda: batched_blocked_qr(stacked, TILE))
    assert result.batch == batch
    model = batched_qr_trace(batch, DIM, DIM, TILE, limbs)
    benchmark.extra_info["md_flops"] = model.total_flops()
    benchmark.extra_info["launches"] = model.kernel_launch_count


@pytest.mark.heavy
@pytest.mark.parametrize("batch", [8, 32])
def test_looped_qr_sweep(benchmark, batch):
    """The loop baseline of the sweep (dd), for the comparison row."""
    matrices = _random_batch(DIM, DIM, LIMBS, batch)
    results = benchmark(lambda: [blocked_qr(m, TILE) for m in matrices])
    assert len(results) == batch
