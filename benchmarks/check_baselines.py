"""Validate committed ``BENCH_*.json`` baselines and police their drift.

Every benchmark suite records its floor-gated measurements through
``harness.record``, which writes one ``BENCH_<suite>.json`` per suite.
Those files are committed as the performance baseline of record, and
CI runs this checker on every push to keep them honest:

**Schema** — each baseline must carry the harness envelope
(``suite`` matching its filename, ``git_sha``, ``python``,
``updated``, a non-empty ``entries`` mapping of dict entries).  The
``environment`` block is newer than the oldest baselines, so it is
*null-tolerant*: absent is fine, but when present it must be a mapping
(and ``exec_backend`` inside it may be missing on pre-exec suites).
Per-entry ``git_sha``/``recorded_at`` stamps (the trend store orders
run history by them) are validated the same way: entries recorded
before the stamps existed may omit them, but a present stamp must be a
non-empty string.

**Drift** — with ``--diff-range`` the checker asks git which files a
change touched.  Editing a committed baseline without touching any
benchmark *code* (a non-baseline file under ``benchmarks/``) is how
silent goalpost-moving happens, so that combination fails: a baseline
refresh must ride with the bench change that motivated it.

Usage::

    python benchmarks/check_baselines.py
    python benchmarks/check_baselines.py --diff-range origin/main...HEAD
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

BENCH_DIR = Path(__file__).resolve().parent

#: Top-level keys every baseline must carry (``environment`` is optional).
REQUIRED_KEYS = ("suite", "git_sha", "python", "updated", "entries")

_BASELINE_RE = re.compile(r"^BENCH_[A-Za-z0-9_]+\.json$")


def baseline_paths(bench_dir: Path = BENCH_DIR) -> list[Path]:
    return sorted(
        path for path in bench_dir.glob("BENCH_*.json") if _BASELINE_RE.match(path.name)
    )


def validate_baseline(path: Path) -> list[str]:
    """Return a list of schema problems for one baseline (empty = valid)."""
    problems: list[str] = []
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path.name}: top level must be an object"]

    for key in REQUIRED_KEYS:
        if key not in payload:
            problems.append(f"{path.name}: missing required key {key!r}")
    suite = payload.get("suite")
    expected = path.stem.removeprefix("BENCH_")
    if isinstance(suite, str) and suite != expected:
        problems.append(
            f"{path.name}: suite {suite!r} does not match filename "
            f"(expected {expected!r})"
        )
    for key in ("suite", "git_sha", "python", "updated"):
        value = payload.get(key)
        if key in payload and (not isinstance(value, str) or not value):
            problems.append(f"{path.name}: {key!r} must be a non-empty string")

    entries = payload.get("entries")
    if "entries" in payload:
        if not isinstance(entries, dict) or not entries:
            problems.append(f"{path.name}: 'entries' must be a non-empty object")
        else:
            for name, entry in entries.items():
                if not isinstance(entry, dict):
                    problems.append(
                        f"{path.name}: entry {name!r} must be an object"
                    )
                    continue
                # per-entry stamps are null-tolerant like 'environment':
                # pre-stamp entries may omit them, present must be valid
                for stamp in ("git_sha", "recorded_at"):
                    if stamp in entry and (
                        not isinstance(entry[stamp], str) or not entry[stamp]
                    ):
                        problems.append(
                            f"{path.name}: entry {name!r} stamp {stamp!r} "
                            "must be a non-empty string when present"
                        )

    # environment is null-tolerant: the oldest baselines predate it
    environment = payload.get("environment")
    if environment is not None and not isinstance(environment, dict):
        problems.append(
            f"{path.name}: 'environment' must be an object when present"
        )
    return problems


def changed_files(diff_range: str, repo_root: Path) -> list[str]:
    out = subprocess.run(
        ["git", "diff", "--name-only", diff_range],
        cwd=repo_root,
        capture_output=True,
        text=True,
        check=True,
    )
    return [line.strip() for line in out.stdout.splitlines() if line.strip()]


def drift_problems(changed: list[str]) -> list[str]:
    """Baselines edited without any benchmark-code change in the range."""
    bench_changes = [name for name in changed if name.startswith("benchmarks/")]
    touched_baselines = [
        name for name in bench_changes if _BASELINE_RE.match(Path(name).name)
    ]
    code_changes = [name for name in bench_changes if name not in touched_baselines]
    if touched_baselines and not code_changes:
        return [
            f"{name}: baseline changed but no benchmark code changed in the "
            "same range — refresh baselines together with the bench change "
            "that motivated them" for name in touched_baselines
        ]
    return []


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--diff-range",
        help="git diff range (e.g. origin/main...HEAD) for the drift check; "
        "omitted = schema validation only",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=BENCH_DIR,
        help="directory holding the BENCH_*.json baselines",
    )
    args = parser.parse_args(argv)

    paths = baseline_paths(args.bench_dir)
    if not paths:
        print(f"no BENCH_*.json baselines under {args.bench_dir}", file=sys.stderr)
        return 1

    problems: list[str] = []
    for path in paths:
        problems.extend(validate_baseline(path))

    if args.diff_range:
        try:
            changed = changed_files(args.diff_range, args.bench_dir.parent)
        except subprocess.CalledProcessError as exc:
            print(
                f"git diff {args.diff_range!r} failed: {exc.stderr.strip()}",
                file=sys.stderr,
            )
            return 1
        problems.extend(drift_problems(changed))

    if problems:
        for problem in problems:
            print(f"FAIL {problem}", file=sys.stderr)
        return 1
    print(f"OK {len(paths)} baselines validated" + (
        f" (drift-checked against {args.diff_range})" if args.diff_range else ""
    ))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
