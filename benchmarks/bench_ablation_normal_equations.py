"""Ablation: Householder QR vs normal equations (Cholesky) least squares.

The paper's solver pays for a full QR factorization; the cheaper
normal-equations route squares the condition number.  This ablation
measures both solvers' real execution and checks the accuracy gap on an
ill conditioned problem, quantifying why the QR route is the right
default even when extended precision is available.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lstsq
from repro.core.normal_equations import solve_normal_equations
from repro.vec import MDArray, linalg
from repro.vec import random as mdrandom


@pytest.mark.parametrize("solver", ["qr", "normal_equations"])
def test_real_execution_cost(benchmark, solver, rng):
    a, b = mdrandom.random_lstsq_problem(32, 16, 2, rng)
    if solver == "qr":
        result = benchmark.pedantic(lambda: lstsq(a, b, tile_size=4), rounds=1, iterations=1)
        x = result.x
    else:
        x = benchmark.pedantic(lambda: solve_normal_equations(a, b), rounds=1, iterations=1).x
    gradient = linalg.matvec(linalg.conjugate_transpose(a), b - linalg.matvec(a, x))
    assert linalg.max_abs_entry(gradient) < 1e-25


def test_qr_is_more_accurate_on_ill_conditioned_problems(benchmark, rng):
    n = 12
    u, _ = np.linalg.qr(rng.standard_normal((n, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    a = MDArray.from_double(u @ np.diag(10.0 ** -np.arange(n, dtype=float)) @ v.T, 2)
    x_true = mdrandom.random_vector(n, 2, rng)
    b = linalg.matvec(a, x_true)

    def both():
        return solve_normal_equations(a, b).x, lstsq(a, b, tile_size=4).x

    x_ne, x_qr = benchmark.pedantic(both, rounds=1, iterations=1)
    err_ne = linalg.max_abs_entry(x_ne - x_true)
    err_qr = linalg.max_abs_entry(x_qr - x_true)
    benchmark.extra_info["error_normal_equations"] = err_ne
    benchmark.extra_info["error_qr"] = err_qr
    assert err_qr < 1e-3 * err_ne
