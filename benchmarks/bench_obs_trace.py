"""Telemetry on a tracked fleet: observe-only overhead + the artifact.

Runs the cyclic-2 total-degree fleet twice — recording OFF, then ON —
and checks the observe-only contract end to end: identical step
records either way, bounded wall-clock overhead, and a complete
telemetry artifact out the other side:

* ``telemetry_cyclic2_fleet.jsonl`` in the results directory (uploaded
  by the CI ``perf-smoke`` job next to the ``BENCH_*.json`` files);
* a ``telemetry`` metrics summary (counters + stage p50/p90/p99)
  inside the ``BENCH_obs.json`` entry itself;
* a populated predicted-vs-measured table — every profiled span
  aligned with the analytic cost of the kernel launches it traced.
"""

from __future__ import annotations

import time

import harness
from repro.obs import predicted_vs_measured, recording, write_jsonl
from repro.poly import Homotopy, cyclic

TRACK = dict(tol=1e-6, order=8, max_steps=64, precision_ladder=(1, 2, 4))

#: Generous ceiling on recording-ON wall clock relative to OFF; the
#: measured overhead is a few percent, the cap only catches a recorder
#: accidentally placed on a hot inner loop.
OVERHEAD_CAP = 2.0


def test_recorded_fleet_produces_telemetry_artifact():
    homotopy = Homotopy.total_degree(cyclic(2), seed=7)

    start = time.perf_counter()
    baseline = homotopy.track_fleet(**TRACK)
    off_seconds = time.perf_counter() - start

    with recording(label="cyclic-2 fleet (perf-smoke)") as recorder:
        start = time.perf_counter()
        fleet = homotopy.track_fleet(**TRACK)
        on_seconds = time.perf_counter() - start

    # -- observe-only: recording changed nothing ----------------------
    for ref_path, obs_path in zip(baseline.paths, fleet.paths):
        assert ref_path.steps == obs_path.steps
        assert ref_path.final_t == obs_path.final_t
    assert baseline.sub_batches == fleet.sub_batches
    overhead = on_seconds / off_seconds
    assert overhead < OVERHEAD_CAP

    # -- the artifact --------------------------------------------------
    jsonl_path = write_jsonl(
        recorder, harness.results_dir() / "telemetry_cyclic2_fleet.jsonl"
    )
    rows = predicted_vs_measured(recorder)
    assert rows, "profiled spans must carry predicted and measured ms"

    harness.record(
        "obs",
        "cyclic2_fleet_recorded",
        telemetry=recorder,
        shape=harness.problem_shape(n=2, degree=2, batch=2, order=TRACK["order"]),
        off_seconds=off_seconds,
        on_seconds=on_seconds,
        overhead_ratio=overhead,
        overhead_cap=OVERHEAD_CAP,
        records=len(recorder.records),
        profiled_spans=len(rows),
        artifact=jsonl_path.name,
    )
    print(
        f"\ncyclic-2 fleet: OFF {off_seconds:.2f} s, ON {on_seconds:.2f} s "
        f"({overhead:.2f}x), {len(recorder.records)} records, "
        f"{len(rows)} profiled span names -> {jsonl_path.name}"
    )
