"""Ablation: blocked (Algorithm 2) vs unblocked Householder QR.

The blocked algorithm exists because its matrix-matrix products map
well onto a GPU; the ablation checks both the real execution at small
sizes and the modelled device behaviour: the blocked variant
concentrates the work in few large launches, while the unblocked
variant issues many small matrix-vector launches whose occupancy and
launch overhead dominate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import blocked_qr
from repro.core.baseline import unblocked_householder_qr
from repro.perf.model import PerformanceModel
from repro.vec import linalg
from repro.vec import random as mdrandom


@pytest.mark.parametrize("variant", ["blocked", "unblocked"])
def test_real_execution_cost(benchmark, variant):
    rng = np.random.default_rng(5)
    a = mdrandom.random_matrix(40, 40, 2, rng)
    if variant == "blocked":
        run = benchmark.pedantic(lambda: blocked_qr(a, 8), rounds=1, iterations=1)
        q, r = run.Q, run.R
    else:
        q, r, _ = benchmark.pedantic(lambda: unblocked_householder_qr(a), rounds=1, iterations=1)
    assert np.max(np.abs(linalg.matmul(q, r).to_double() - a.to_double())) < 1e-12


def test_blocked_work_is_matrix_matrix_shaped(benchmark):
    """The point of blocking: the work lands in matrix-matrix kernels."""
    from repro.core import stages

    rng = np.random.default_rng(6)
    a = mdrandom.random_matrix(48, 48, 2, rng)

    def both():
        blocked = blocked_qr(a, 12).trace
        unblocked = unblocked_householder_qr(a)[2]
        return blocked, unblocked

    blocked, unblocked = benchmark.pedantic(both, rounds=1, iterations=1)
    matmul_stages = {stages.STAGE_YWT, stages.STAGE_QWYT, stages.STAGE_YWTC}
    matmul_flops = sum(
        launch.flops() for launch in blocked.launches if launch.stage in matmul_stages
    )
    # more than half of the blocked algorithm's work is in matrix products
    assert matmul_flops > 0.5 * blocked.total_flops()
    # the matrix products launch grids with many blocks, which is what lets
    # them occupy a GPU; the unblocked reflector applications never exceed
    # a single block per launch
    assert max(launch.blocks for launch in blocked.launches) > 10 * max(
        launch.blocks for launch in unblocked.launches
    )


def test_blocked_wins_on_device_model_at_scale(benchmark):
    """At the paper's dimension the blocked algorithm is faster on the
    simulated device even though it performs more arithmetic."""
    from repro.core import stages as stage_names
    from repro.gpu import KernelTrace
    from repro.gpu.memory import md_bytes
    from repro.perf.costmodel import qr_trace

    def build():
        blocked = qr_trace(512, 512, 128, 4, "V100")
        # analytic trace of the unblocked baseline: per column, one
        # Householder kernel plus two single-block reflector applications
        unblocked = KernelTrace("V100", label="unblocked QR model")
        rows = cols = 512
        for j in range(cols):
            length = rows - j
            trailing = cols - j
            unblocked.add(
                "householder", stage_names.STAGE_BETA_V, blocks=1,
                threads_per_block=128, limbs=4,
                tally=stage_names.tally_householder_vector(length),
                bytes_read=md_bytes(length, 4), bytes_written=md_bytes(length, 4),
            )
            unblocked.add(
                "apply_r", stage_names.STAGE_UPDATE_R, blocks=1,
                threads_per_block=128, limbs=4,
                tally=stage_names.tally_matvec(trailing, length)
                + stage_names.tally_rank1_update(length, trailing),
                bytes_read=md_bytes(2 * length * trailing, 4),
                bytes_written=md_bytes(length * trailing, 4),
            )
            unblocked.add(
                "apply_q", stage_names.STAGE_QWYT, blocks=1,
                threads_per_block=128, limbs=4,
                tally=stage_names.tally_matvec(rows, length)
                + stage_names.tally_rank1_update(rows, length),
                bytes_read=md_bytes(2 * rows * length, 4),
                bytes_written=md_bytes(rows * length, 4),
            )
        return blocked, unblocked

    blocked, unblocked = benchmark(build)
    model = PerformanceModel("V100")
    blocked_time = model.attribute(blocked).kernel_ms
    unblocked_time = model.attribute(unblocked).kernel_ms
    assert blocked.total_flops() >= unblocked.total_flops()
    assert blocked_time < unblocked_time
