"""Series Newton workload: order x precision sweep.

Two views of the new :mod:`repro.series` subsystem, matching the split
used by the table benchmarks:

* ``test_real_series_newton`` genuinely executes the order-by-order
  series Newton staircase (one multiple double solve per order) on the
  examples' square-root system, sweeping truncation order and precision;
* ``test_model_path_step`` asks the analytic cost model and the
  performance model what one adaptive tracker step (series expansion
  plus per-component Padé construction) costs on the paper's V100 at
  paper-sized dimensions, sweeping the precision ladder.
"""

from __future__ import annotations

import pytest

from repro.md.opcounts import series_flops
from repro.perf.costmodel import path_step_trace
from repro.perf.model import PerformanceModel
from repro.series import newton_series, pade


def sqrt_system(x, t):
    x1, x2 = x
    return [x1 * x1 - 1 - t, x1 * x2 - 1]


def sqrt_jacobian(x0):
    return [[2 * x0[0], 0], [x0[1], x0[0]]]


@pytest.mark.parametrize("limbs", [1, 2, 4, 8], ids=["1d", "2d", "4d", "8d"])
@pytest.mark.parametrize("order", [8, 16])
def test_real_series_newton(benchmark, order, limbs):
    """Execute the staircase for real; wall time follows Table 1."""
    result = benchmark(
        lambda: newton_series(
            sqrt_system, sqrt_jacobian, [1, 1], order, limbs, tile_size=1
        )
    )
    assert result.order == order
    benchmark.extra_info["md_operations"] = result.trace.total_md_operations()
    benchmark.extra_info["series_mul_flops"] = series_flops("mul", order, limbs)


@pytest.mark.parametrize("limbs", [1, 2, 4, 8], ids=["1d", "2d", "4d", "8d"])
@pytest.mark.parametrize("order", [8, 16])
def test_real_series_pade(benchmark, order, limbs):
    """Summing the series with a Padé approximant (Hankel solve)."""
    expansion = newton_series(
        sqrt_system, sqrt_jacobian, [1, 1], order, limbs, tile_size=1
    )
    L = M = (order - 1) // 2
    approximant = benchmark(lambda: pade(expansion.series[0], L, M))
    assert approximant.defect is not None


@pytest.mark.parametrize("limbs", [2, 4, 8], ids=["2d", "4d", "8d"])
def test_model_path_step(benchmark, limbs):
    """Model one tracker step at paper scale (dimension 1024, order 24)."""
    model = PerformanceModel("V100")

    def run():
        trace = path_step_trace(1024, 24, limbs, tile_size=128)
        return model.attribute(trace)

    timed = benchmark(run)
    assert timed.kernel_ms > 0.0
    benchmark.extra_info["kernel_ms"] = timed.kernel_ms
    benchmark.extra_info["kernel_gflops"] = timed.trace.kernel_gigaflops()
