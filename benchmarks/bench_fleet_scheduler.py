"""Continuous vs lockstep fleet scheduling on a straggler fleet.

The continuous scheduler's bargain: identical per-path arithmetic,
fewer/wider launches, and — because re-packing lets it route a whole
sub-batch's residual expansion through ``residual_fleet`` — far less
per-path series work on the host side.  This benchmark pins the
bargain on the fleet the scheduler was built for: a heterogeneous
32-path dd fleet with **one od-escalating straggler**.

The fleet tracks the system

* ``x1 = 2 + t + x3``                       (well-scaled, all paths)
* ``((2-t) x2^2 - (1+t)) (x2 - V - x3) = 0``
* ``x3 = a sqrt(1 - t/4)``                  (honest series tail)

31 paths start on the benign branch ``x2 = sqrt((1+t)/(2-t))`` and
crawl forward in dd steps for the whole step budget.  One path starts on
``x2 = V + x3`` with ``V = 1e43``: its coefficient condition is huge,
double-double and quad-double noise floors reject every trial step,
and the path escalates 2d -> 4d -> 8d before covering ``t`` in a
single od stride and retiring early.  The ``x3`` carrier gives every
component a genuine square-root tail, so the Pade denominators see the
true branch point at ``t = 4`` instead of noise poles.

Checked before any timing (identical work, or the timing is vacuous):

* both policies produce **bitwise identical** per-path results —
  final ``t``, step count, and every limb of every final coordinate;
* the straggler reaches ``t = 1``, uses exactly ``('2d', '4d', '8d')``,
  and retires after one od step.

Timing compares full ``track_paths`` runs under each policy on the
generic execution backend (pinned: the fused backend changes kernel
cost, not scheduling, and is exercised by its own CI leg), best-of-N
to shrug off machine noise.  The floor is deliberately below the
measured ~1.6x so it fails on regression, not on jitter.
"""

from __future__ import annotations

import math

import harness
from repro.batch import track_paths
from repro.exec import use_backend
from repro.obs import recording
from repro.poly import PolynomialSystem

#: Minimum continuous-over-lockstep wall-clock ratio (measured ~1.6x).
FLOOR = 1.3

#: Straggler magnitude: large enough that dd *and* qd noise floors
#: reject every trial step, forcing the full 2d -> 4d -> 8d ladder.
V = 1e43
#: Amplitude of the sqrt tail carried into every component by x3.
A = 1e-18
A2 = A * A

BATCH = 32
TRACK = dict(
    tol=1e-22,
    order=8,
    max_steps=10,
    precision_ladder=(2, 4, 8),
    correct=False,
)


def straggler_fleet():
    """The 32-path fleet: 31 benign dd paths + 1 od straggler."""
    system = PolynomialSystem(
        [
            # x1 - 2 - t - x3 = 0
            [
                (1, (1, 0, 0, 0)),
                (-2, (0, 0, 0, 0)),
                (-1, (0, 0, 0, 1)),
                (-1, (0, 0, 1, 0)),
            ],
            # ((2-t) x2^2 - (1+t)) * (x2 - V - x3) = 0, expanded
            [
                (2, (0, 3, 0, 0)),
                (-1, (0, 3, 0, 1)),
                (-2 * V, (0, 2, 0, 0)),
                (V, (0, 2, 0, 1)),
                (-2, (0, 2, 1, 0)),
                (1, (0, 2, 1, 1)),
                (-1, (0, 1, 0, 0)),
                (-1, (0, 1, 0, 1)),
                (V, (0, 0, 0, 0)),
                (V, (0, 0, 0, 1)),
                (1, (0, 0, 1, 0)),
                (1, (0, 0, 1, 1)),
            ],
            # x3^2 - a^2 (1 - t/4) = 0
            [
                (1, (0, 0, 2, 0)),
                (-A2, (0, 0, 0, 0)),
                (A2 / 4, (0, 0, 0, 1)),
            ],
        ]
    )
    easy = [2.0 + A, math.sqrt(0.5), A]
    hard = [2.0 + A, V + A, A]
    starts = [easy] * (BATCH - 1) + [hard]
    return system, starts


def run(policy):
    system, starts = straggler_fleet()
    return track_paths(system, starts, policy=policy, **TRACK)


def assert_bitwise_identical(lockstep, continuous):
    """Per-path results must agree limb for limb across policies."""
    assert lockstep.batch == continuous.batch
    for ref, obs in zip(lockstep.paths, continuous.paths):
        assert obs.final_t == ref.final_t
        assert obs.step_count == ref.step_count
        assert obs.precisions_used == ref.precisions_used
        for ref_md, obs_md in zip(ref.final_point, obs.final_point):
            assert ref_md.limbs == obs_md.limbs


def test_continuous_beats_lockstep_on_straggler_fleet():
    with use_backend("generic"):
        lockstep = run("lockstep")
        with recording(label="straggler fleet (perf-smoke)") as recorder:
            continuous = run("continuous")

        # -- identical arithmetic, different packing -------------------
        assert_bitwise_identical(lockstep, continuous)

        # -- the straggler story ---------------------------------------
        straggler = continuous.paths[-1]
        assert straggler.reached
        assert straggler.precisions_used == ("2d", "4d", "8d")
        assert straggler.step_count == 1, "straggler must retire in one od stride"
        for path in continuous.paths[:-1]:
            # the benign branch crawls in dd for the whole step budget
            assert path.precisions_used == ("2d",)
            assert path.step_count == TRACK["max_steps"]

        # -- timing: best-of-N full runs per policy --------------------
        lockstep_seconds = harness.best_seconds(lambda: run("lockstep"), repeats=2)
        continuous_seconds = harness.best_seconds(
            lambda: run("continuous"), repeats=2
        )
    speedup = lockstep_seconds / continuous_seconds

    harness.record(
        "fleet",
        "straggler_fleet_b32_dd_od",
        telemetry=recorder,
        shape=harness.problem_shape(
            n=3, degree=3, batch=BATCH, order=TRACK["order"]
        ),
        policy_ladder="2d -> 4d -> 8d",
        lockstep_seconds=lockstep_seconds,
        continuous_seconds=continuous_seconds,
        speedup=speedup,
        floor=FLOOR,
        lockstep_rounds=lockstep.rounds,
        continuous_rounds=continuous.rounds,
        lockstep_sub_batches=len(lockstep.sub_batches),
        continuous_sub_batches=len(continuous.sub_batches),
        occupancy=continuous.occupancy,
        batching_speedup=continuous.batching_speedup,
        straggler_steps=straggler.step_count,
        reached=continuous.reached_count,
    )
    print(
        f"\nstraggler fleet b={BATCH}: lockstep {lockstep_seconds:.2f} s, "
        f"continuous {continuous_seconds:.2f} s ({speedup:.2f}x, floor "
        f"{FLOOR}x), occupancy {continuous.occupancy:.0%}, "
        f"{len(continuous.sub_batches)} sub-batches"
    )
    print(f"  {continuous.summary()}")
    assert speedup >= FLOOR, (
        f"continuous {continuous_seconds:.2f} s vs lockstep "
        f"{lockstep_seconds:.2f} s: {speedup:.2f}x under the {FLOOR}x floor"
    )
