"""Table 6 and Figure 2: QR for increasing dimensions on the V100."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table6_qr_increasing_dimensions(benchmark):
    result = run_and_render(benchmark, experiments.table6_qr_dimensions)
    for limbs in (2, 4, 8):
        rows = {r["dimension"]: r for r in result.rows if r["limbs"] == limbs}
        # monotone growth with the dimension
        assert rows[512]["kernel_ms"] < rows[1024]["kernel_ms"] < rows[2048]["kernel_ms"]
    # at dimension 512 the computation of W is a dominant panel stage; by
    # dimension 2048 the matrix-matrix products dominate (paper Section 4.6)
    qd_512 = next(r for r in result.rows if r["limbs"] == 4 and r["dimension"] == 512)
    qd_2048 = next(r for r in result.rows if r["limbs"] == 4 and r["dimension"] == 2048)
    assert qd_512["stage[compute W]"] >= qd_512["stage[Q*WY^T]"]
    assert qd_2048["stage[Q*WY^T]"] > qd_2048["stage[compute W]"]


def test_figure2_dimension_scaling(benchmark):
    result = run_and_render(benchmark, experiments.figure2_qr_dimension_scaling)
    qd = [r["log2_kernel_ms"] for r in result.rows if r["limbs"] == 4]
    assert qd == sorted(qd)
