"""Ablation: tiled accelerated (Algorithm 1) vs classical back substitution."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import tiled_back_substitution
from repro.core.baseline import classical_back_substitution
from repro.perf.costmodel import back_substitution_trace
from repro.perf.model import PerformanceModel
from repro.vec import linalg
from repro.vec import random as mdrandom


@pytest.mark.parametrize("variant", ["tiled", "classical"])
def test_real_execution_cost(benchmark, variant, rng):
    u = mdrandom.random_well_conditioned_upper_triangular(64, 2, rng)
    b = mdrandom.random_vector(64, 2, rng)
    if variant == "tiled":
        result = benchmark.pedantic(lambda: tiled_back_substitution(u, b, 16), rounds=1, iterations=1)
        x = result.x
    else:
        x, _ = benchmark.pedantic(lambda: classical_back_substitution(u, b), rounds=1, iterations=1)
    assert linalg.residual_norm(u, x, b) < 1e-27


def test_tiled_wins_on_device_model_at_scale(benchmark):
    """At the paper's dimensions the tiled algorithm beats the classical
    one on the device model by a wide margin: the classical substitution
    issues one single-block launch per row and can never occupy the GPU."""
    from repro.core import stages as stage_names
    from repro.gpu import KernelTrace, OperationTally
    from repro.gpu.memory import md_bytes

    dim, tile = 5120, 64

    def build():
        tiled = back_substitution_trace(dim // tile, tile, 4, "V100")
        classical = KernelTrace("V100", label="classical back substitution model")
        for i in range(dim - 1, -1, -1):
            terms = dim - 1 - i
            classical.add(
                "row_solve", stage_names.STAGE_BACK_SUBSTITUTION, blocks=1,
                threads_per_block=32, limbs=4,
                tally=stage_names.tally_matvec(1, max(terms, 1)) + OperationTally(divisions=1),
                bytes_read=md_bytes(terms + 2, 4), bytes_written=md_bytes(1, 4),
            )
        return tiled, classical

    tiled, classical = benchmark(build)
    model = PerformanceModel("V100")
    tiled_ms = model.attribute(tiled).kernel_ms
    classical_ms = model.attribute(classical).kernel_ms
    assert len(tiled) < len(classical)
    assert tiled_ms < classical_ms / 5


@pytest.mark.parametrize("tile", [32, 64, 128, 256])
def test_tile_size_sweep_on_device_model(benchmark, tile):
    """Model-level ablation of the Table 8/9 tiling choice at dimension 20,480."""
    tiles = 20480 // tile
    trace = benchmark(lambda: back_substitution_trace(tiles, tile, 4, "V100"))
    run = PerformanceModel("V100").attribute(trace)
    benchmark.extra_info["kernel_ms"] = round(run.kernel_ms, 1)
    benchmark.extra_info["kernel_gflops"] = round(run.kernel_gigaflops, 1)
    assert run.kernel_ms > 0
