"""Table 3: double double QR of a 1,024x1,024 matrix on five GPUs."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table3_dd_qr_on_five_gpus(benchmark):
    result = run_and_render(benchmark, experiments.table3_qr_dd_five_gpus)
    rates = {row["device"]: row["kernel_gflops"] for row in result.rows}
    times = {row["device"]: row["kernel_ms"] for row in result.rows}
    # teraflop performance on the P100 and V100, not on the others
    assert rates["P100"] > 1000 and rates["V100"] > 1000
    assert rates["C2050"] < 1000 and rates["K20C"] < 1000 and rates["RTX2080"] < 1000
    # historical ranking: every newer datacenter GPU is faster
    assert times["V100"] < times["P100"] < times["K20C"] < times["C2050"]
    # the V100/P100 time ratio is in the vicinity of the 1.68 peak ratio
    assert 1.2 < times["P100"] / times["V100"] < 2.3
