"""Table 8: quad double back substitution at dimension 20,480, tilings."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table8_tiling_tradeoff(benchmark):
    result = run_and_render(benchmark, experiments.table8_backsub_tilings)
    by_tiling = {r["tiling"]: r for r in result.rows}
    # fixing N at 80 (matching the V100's multiprocessors) gives the best
    # performance; larger tiles increase the kernel time but the device is
    # used far better (in the paper this also shrinks the wall clock time;
    # in this model the wall-to-kernel gap shrinks instead, because the
    # grouped update launches keep the modelled launch overhead small)
    assert by_tiling["80x256"]["kernel_gflops"] > by_tiling["160x128"]["kernel_gflops"]
    assert by_tiling["160x128"]["kernel_gflops"] > by_tiling["320x64"]["kernel_gflops"]
    assert by_tiling["80x256"]["kernel_ms"] > by_tiling["320x64"]["kernel_ms"]
    ratio_large = by_tiling["80x256"]["wall_ms"] / by_tiling["80x256"]["kernel_ms"]
    ratio_small = by_tiling["320x64"]["wall_ms"] / by_tiling["320x64"]["kernel_ms"]
    assert ratio_large < ratio_small
