"""Table 5: real vs complex double double QR at dimension 512."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table5_real_vs_complex_tile_sweep(benchmark):
    result = run_and_render(benchmark, experiments.table5_real_vs_complex)
    real = {r["tiling"]: r for r in result.rows if r["data"] == "real"}
    cplx = {r["tiling"]: r for r in result.rows if r["data"] == "complex"}
    for tiling in real:
        # complex arithmetic needs roughly four times the operations, so the
        # kernel times are a few times larger at equal dimension
        assert 2.0 < cplx[tiling]["kernel_ms"] / real[tiling]["kernel_ms"] < 5.0
    # performance improves when going from 32-thread to 128-thread tiles
    assert real["4x128"]["kernel_gflops"] > real["16x32"]["kernel_gflops"]
    assert cplx["4x128"]["kernel_gflops"] > cplx["16x32"]["kernel_gflops"]
