"""Real execution of the multiple double kernels (host, reduced sizes).

Unlike the table benchmarks (which use the analytic cost model at the
paper's dimensions), these benchmarks genuinely execute the vectorized
limb-major arithmetic, so they measure this library's host-side
throughput and verify that the relative cost of the precisions follows
the operation counts.

Measurements go through the shared :mod:`harness` into
``BENCH_kernels.json`` (suite ``kernels``) — the same committed,
git-SHA-stamped record the floor benchmarks use — so the per-precision
throughput of the real kernels is tracked across PRs instead of living
only in transient pytest-benchmark output.  The ``environment`` block
of the file names the active :mod:`repro.exec` backend the numbers
were measured under.
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.core import blocked_qr, lstsq, tiled_back_substitution
from repro.vec import linalg
from repro.vec import random as mdrandom


def _record(entry, seconds, **shape):
    harness.record(
        "kernels",
        entry,
        shape=harness.problem_shape(**shape),
        seconds=seconds,
    )


@pytest.mark.parametrize("limbs,dim", [(2, 48), (4, 24), (8, 12)])
def test_real_matmul(limbs, dim):
    rng = np.random.default_rng(7)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    b = mdrandom.random_matrix(dim, dim, limbs, rng)
    result = linalg.matmul(a, b)
    assert result.shape == (dim, dim)
    seconds = harness.best_seconds(lambda: linalg.matmul(a, b), repeats=3)
    _record(f"matmul_{limbs}d_n{dim}", seconds, n=dim, limbs=limbs)


@pytest.mark.parametrize("limbs,dim", [(2, 128), (4, 64), (8, 32)])
def test_real_matvec(limbs, dim):
    rng = np.random.default_rng(8)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    x = mdrandom.random_vector(dim, limbs, rng)
    result = linalg.matvec(a, x)
    assert result.shape == (dim,)
    seconds = harness.best_seconds(lambda: linalg.matvec(a, x), repeats=3)
    _record(f"matvec_{limbs}d_n{dim}", seconds, n=dim, limbs=limbs)


@pytest.mark.parametrize("limbs,dim,tile", [(2, 48, 12), (4, 24, 6)])
def test_real_blocked_qr(limbs, dim, tile):
    rng = np.random.default_rng(9)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    seconds = harness.best_seconds(lambda: blocked_qr(a, tile), repeats=1)
    result = blocked_qr(a, tile)
    orth = linalg.matmul(linalg.conjugate_transpose(result.Q), result.Q)
    assert np.max(np.abs(orth.to_double() - np.eye(dim))) < dim * 2.0 ** (-48 * limbs)
    _record(f"blocked_qr_{limbs}d_n{dim}", seconds, n=dim, limbs=limbs, tile=tile)


@pytest.mark.parametrize("limbs,dim,tile", [(2, 96, 16), (4, 48, 12)])
def test_real_back_substitution(limbs, dim, tile):
    rng = np.random.default_rng(10)
    u = mdrandom.random_well_conditioned_upper_triangular(dim, limbs, rng)
    b = mdrandom.random_vector(dim, limbs, rng)
    seconds = harness.best_seconds(
        lambda: tiled_back_substitution(u, b, tile), repeats=1
    )
    result = tiled_back_substitution(u, b, tile)
    assert linalg.residual_norm(u, result.x, b) < dim * 2.0 ** (-48 * limbs)
    _record(
        f"back_substitution_{limbs}d_n{dim}", seconds, n=dim, limbs=limbs, tile=tile
    )


@pytest.mark.parametrize("limbs,dim,tile", [(2, 40, 10), (4, 24, 6)])
def test_real_least_squares(limbs, dim, tile):
    rng = np.random.default_rng(11)
    a, b = mdrandom.random_lstsq_problem(dim, dim, limbs, rng)
    seconds = harness.best_seconds(lambda: lstsq(a, b, tile_size=tile), repeats=1)
    result = lstsq(a, b, tile_size=tile)
    assert result.residual_norm(a, b) < dim * 2.0 ** (-48 * limbs)
    _record(f"lstsq_{limbs}d_n{dim}", seconds, n=dim, limbs=limbs, tile=tile)
