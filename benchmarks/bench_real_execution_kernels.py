"""Real execution of the multiple double kernels (host, reduced sizes).

Unlike the table benchmarks (which use the analytic cost model at the
paper's dimensions), these benchmarks genuinely execute the vectorized
limb-major arithmetic, so they measure this library's host-side
throughput and verify that the relative cost of the precisions follows
the operation counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import blocked_qr, lstsq, tiled_back_substitution
from repro.vec import linalg
from repro.vec import random as mdrandom


@pytest.mark.parametrize("limbs,dim", [(2, 48), (4, 24), (8, 12)])
def test_real_matmul(benchmark, limbs, dim):
    rng = np.random.default_rng(7)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    b = mdrandom.random_matrix(dim, dim, limbs, rng)
    result = benchmark(lambda: linalg.matmul(a, b))
    assert result.shape == (dim, dim)


@pytest.mark.parametrize("limbs,dim", [(2, 128), (4, 64), (8, 32)])
def test_real_matvec(benchmark, limbs, dim):
    rng = np.random.default_rng(8)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    x = mdrandom.random_vector(dim, limbs, rng)
    result = benchmark(lambda: linalg.matvec(a, x))
    assert result.shape == (dim,)


@pytest.mark.parametrize("limbs,dim,tile", [(2, 48, 12), (4, 24, 6)])
def test_real_blocked_qr(benchmark, limbs, dim, tile):
    rng = np.random.default_rng(9)
    a = mdrandom.random_matrix(dim, dim, limbs, rng)
    result = benchmark.pedantic(lambda: blocked_qr(a, tile), rounds=1, iterations=1)
    orth = linalg.matmul(linalg.conjugate_transpose(result.Q), result.Q)
    assert np.max(np.abs(orth.to_double() - np.eye(dim))) < dim * 2.0 ** (-48 * limbs)


@pytest.mark.parametrize("limbs,dim,tile", [(2, 96, 16), (4, 48, 12)])
def test_real_back_substitution(benchmark, limbs, dim, tile):
    rng = np.random.default_rng(10)
    u = mdrandom.random_well_conditioned_upper_triangular(dim, limbs, rng)
    b = mdrandom.random_vector(dim, limbs, rng)
    result = benchmark.pedantic(lambda: tiled_back_substitution(u, b, tile), rounds=1, iterations=1)
    assert linalg.residual_norm(u, result.x, b) < dim * 2.0 ** (-48 * limbs)


@pytest.mark.parametrize("limbs,dim,tile", [(2, 40, 10), (4, 24, 6)])
def test_real_least_squares(benchmark, limbs, dim, tile):
    rng = np.random.default_rng(11)
    a, b = mdrandom.random_lstsq_problem(dim, dim, limbs, rng)
    result = benchmark.pedantic(lambda: lstsq(a, b, tile_size=tile), rounds=1, iterations=1)
    assert result.residual_norm(a, b) < dim * 2.0 ** (-48 * limbs)
