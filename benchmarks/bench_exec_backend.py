"""Fused-vs-generic execution backend: bit identity first, then floors.

The contract of :mod:`repro.exec` is measured here in the order that
matters: the ``fused`` backend must produce **bitwise identical**
results to the ``generic`` reference on every workload below (a speedup
over different bits is worthless), and only then do the timing floors
apply.

The floors are set where each layer's ceiling actually is on a CPU
host.  The fused backend eliminates allocator churn and keeps the EFT
chains' working set L2-resident, so its big win is on wide elementwise
limb launches — the shape of a real GPU kernel — where it clears
**1.5x** with margin (measured 1.6-3.6x here).  The composite workloads (Cauchy
products, batched QR, shared-monomial evaluation) spend a growing
fraction of their time in backend-independent Python driver code
(`repro.vec.linalg`, `repro.batch.qr`, `repro.poly`), so their honest
fused-vs-generic floors are lower; they are asserted as
no-regression-plus-margin floors and the measured speedups are
recorded to ``BENCH_exec.json`` so the trajectory across PRs is
visible.  A CuPy-module backend moves the whole EFT chain off-host,
which lifts exactly the composite workloads these conservative floors
guard.

All assertions run in the CI ``perf-smoke`` job; records land in
``BENCH_exec.json`` through :mod:`harness`.
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.batch import batched_blocked_qr
from repro.exec import FusedBackend, GenericBackend, use_backend
from repro.poly import katsura
from repro.vec import batched as vb
from repro.vec import random as mdrandom
from repro.vec.linalg import cauchy_product
from repro.vec.mdarray import MDArray

#: Floor for the raw fused limb kernels at GPU-like launch widths.
#: Measured 1.6-3.6x depending on host allocator state; asserted at
#: the conservative end so the floor survives noisy CI runners.
ELEMENTWISE_SPEEDUP_FLOOR = 1.5

#: Floors for the composite drivers (shared Python control flow caps
#: them on the host; see the module docstring).
CAUCHY_SPEEDUP_FLOOR = 1.2
QR_SPEEDUP_FLOOR = 0.9
POLY_SPEEDUP_FLOOR = 0.85

LIMBS = 2  # double double — the paper's headline precision

ELEMENTWISE_N = 262144
CAUCHY_BATCH, CAUCHY_ORDER = 256, 32
QR_BATCH, QR_DIM, QR_TILE = 32, 8, 4


def _dd_stack(shape, seed):
    rng = np.random.default_rng(seed)
    data = rng.standard_normal((LIMBS, *shape))
    for k in range(1, LIMBS):
        data[k] = data[k - 1] * 2.0**-53 * rng.standard_normal(shape)
    return data


def _identical(a, b) -> bool:
    return a.shape == b.shape and np.array_equal(a, b)


# ---------------------------------------------------------------------------
# bit identity — the oracle, asserted before any timing
# ---------------------------------------------------------------------------


def test_exec_bit_identity_cauchy():
    """Batched dd Cauchy products: fused == generic, every bit."""
    a = MDArray(_dd_stack((CAUCHY_BATCH, CAUCHY_ORDER + 1), 1))
    b = MDArray(_dd_stack((CAUCHY_BATCH, CAUCHY_ORDER + 1), 2))
    with use_backend("generic"):
        reference = cauchy_product(a, b)
    with use_backend("fused"):
        fused = cauchy_product(a, b)
    assert _identical(reference.data, fused.data)


def test_exec_bit_identity_batched_qr():
    """Batched dd QR: identical Q and R factors under both backends."""
    matrices = vb.stack(
        [
            mdrandom.random_matrix(QR_DIM, QR_DIM, LIMBS, np.random.default_rng(s))
            for s in range(QR_BATCH)
        ]
    )
    with use_backend("generic"):
        reference = batched_blocked_qr(matrices, QR_TILE)
    with use_backend("fused"):
        fused = batched_blocked_qr(matrices, QR_TILE)
    assert _identical(reference.Q.data, fused.Q.data)
    assert _identical(reference.R.data, fused.R.data)


def test_exec_bit_identity_katsura_eval_jacobian():
    """katsura-8 shared-monomial evaluation + Jacobian at dd."""
    system = katsura(8)
    point = MDArray(_dd_stack((system.variables,), 3))
    with use_backend("generic"):
        ref_values, ref_jacobian = system.evaluate_with_jacobian(point, LIMBS)
    with use_backend("fused"):
        fus_values, fus_jacobian = system.evaluate_with_jacobian(point, LIMBS)
    assert _identical(ref_values.data, fus_values.data)
    assert _identical(ref_jacobian.data, fus_jacobian.data)


# ---------------------------------------------------------------------------
# timing floors — recorded to BENCH_exec.json
# ---------------------------------------------------------------------------


def _record_speedup(entry, generic_seconds, fused_seconds, floor, **shape):
    speedup = generic_seconds / fused_seconds
    harness.record(
        "exec",
        entry,
        shape=harness.problem_shape(**shape),
        limbs=LIMBS,
        generic_seconds=generic_seconds,
        fused_seconds=fused_seconds,
        speedup=speedup,
        floor=floor,
    )
    return speedup


@pytest.mark.parametrize("op", ["add", "mul"])
def test_exec_fused_elementwise_floor(op):
    """The raw limb kernels at a GPU-like launch width: >= 1.5x
    (measured 1.6-3.6x) — this is where fusing the EFT chain through
    the scratch arena pays on the host."""
    x = _dd_stack((ELEMENTWISE_N,), 10)
    y = _dd_stack((ELEMENTWISE_N,), 11)
    generic, fused = GenericBackend(), FusedBackend()
    assert _identical(getattr(generic, op)(x, y), getattr(fused, op)(x, y))

    generic_seconds = harness.best_seconds(lambda: getattr(generic, op)(x, y), repeats=7)
    fused_seconds = harness.best_seconds(lambda: getattr(fused, op)(x, y), repeats=7)
    speedup = _record_speedup(
        f"elementwise_{op}_dd_n{ELEMENTWISE_N}",
        generic_seconds,
        fused_seconds,
        ELEMENTWISE_SPEEDUP_FLOOR,
        n=ELEMENTWISE_N,
    )
    print(
        f"\ndd {op} n={ELEMENTWISE_N}: generic {generic_seconds * 1e3:.2f} ms, "
        f"fused {fused_seconds * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= ELEMENTWISE_SPEEDUP_FLOOR


def test_exec_fused_cauchy_floor():
    """Batched dd Cauchy products (b=256, K=32): >= 1.2x (measured
    1.5-1.8x; the gather + pairwise reduction dominate, the per-level
    Python driver is shared)."""
    a = MDArray(_dd_stack((CAUCHY_BATCH, CAUCHY_ORDER + 1), 20))
    b = MDArray(_dd_stack((CAUCHY_BATCH, CAUCHY_ORDER + 1), 21))
    with use_backend("generic"):
        generic_seconds = harness.best_seconds(lambda: cauchy_product(a, b), repeats=5)
    with use_backend("fused"):
        fused_seconds = harness.best_seconds(lambda: cauchy_product(a, b), repeats=5)
    speedup = _record_speedup(
        f"cauchy_dd_b{CAUCHY_BATCH}_k{CAUCHY_ORDER}",
        generic_seconds,
        fused_seconds,
        CAUCHY_SPEEDUP_FLOOR,
        batch=CAUCHY_BATCH,
        order=CAUCHY_ORDER,
    )
    print(
        f"\ncauchy dd b={CAUCHY_BATCH} K={CAUCHY_ORDER}: "
        f"generic {generic_seconds * 1e3:.1f} ms, fused {fused_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= CAUCHY_SPEEDUP_FLOOR


def test_exec_fused_batched_qr_floor():
    """Batched dd QR (b=32, n=8): no regression (measured 1.1-1.4x;
    the blocked-QR driver's per-column control flow is shared, so the
    fused margin here is what the small per-launch planes allow)."""
    matrices = vb.stack(
        [
            mdrandom.random_matrix(QR_DIM, QR_DIM, LIMBS, np.random.default_rng(s))
            for s in range(QR_BATCH)
        ]
    )
    with use_backend("generic"):
        generic_seconds = harness.best_seconds(
            lambda: batched_blocked_qr(matrices, QR_TILE), repeats=5
        )
    with use_backend("fused"):
        fused_seconds = harness.best_seconds(
            lambda: batched_blocked_qr(matrices, QR_TILE), repeats=5
        )
    speedup = _record_speedup(
        f"batched_qr_dd_b{QR_BATCH}_n{QR_DIM}",
        generic_seconds,
        fused_seconds,
        QR_SPEEDUP_FLOOR,
        n=QR_DIM,
        batch=QR_BATCH,
    )
    print(
        f"\nbatched QR dd b={QR_BATCH} n={QR_DIM}: "
        f"generic {generic_seconds * 1e3:.1f} ms, fused {fused_seconds * 1e3:.1f} ms, "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= QR_SPEEDUP_FLOOR


def test_exec_fused_katsura_floor():
    """katsura-8 evaluation + Jacobian at dd: no regression (measured
    ~1.1x; per-term planes are tiny, the shared-monomial driver
    dominates)."""
    system = katsura(8)
    point = MDArray(_dd_stack((system.variables,), 30))
    with use_backend("generic"):
        generic_seconds = harness.best_seconds(
            lambda: system.evaluate_with_jacobian(point, LIMBS), repeats=7
        )
    with use_backend("fused"):
        fused_seconds = harness.best_seconds(
            lambda: system.evaluate_with_jacobian(point, LIMBS), repeats=7
        )
    speedup = _record_speedup(
        "poly_eval_jacobian_dd_katsura8",
        generic_seconds,
        fused_seconds,
        POLY_SPEEDUP_FLOOR,
        n=system.variables,
        degree=system.max_degree,
    )
    print(
        f"\nkatsura-8 eval+jacobian dd: generic {generic_seconds * 1e3:.2f} ms, "
        f"fused {fused_seconds * 1e3:.2f} ms, speedup {speedup:.2f}x"
    )
    assert speedup >= POLY_SPEEDUP_FLOOR
