"""Perf-trajectory sentinel: ingest baselines, judge trends, report.

The committed ``BENCH_*.json`` baselines are snapshots; this CLI keeps
the *trajectory*.  It ingests every baseline in a bench directory into
an append-only :class:`repro.obs.store.TrendStore` ledger (one line
per ``(suite, entry, shape, exec_backend, git_sha, recorded_at)`` run
record — re-running over unchanged baselines appends nothing), judges
every metric series against its rolling-median history
(:mod:`repro.obs.regress`), prints the trend report and exits nonzero
on a ``regress`` verdict when asked — the CI ``perf-trend`` job runs
exactly this and fails the push on a confirmed slowdown.

Usage::

    python benchmarks/trend.py                       # ingest + report
    python benchmarks/trend.py --fail-on-regress     # the CI gate
    python benchmarks/trend.py --store /tmp/ledger.jsonl \\
        --report /tmp/trend.txt --regress-ratio 1.5

The store defaults to ``trend_store.jsonl`` in the harness results
directory (so ``BENCH_OUTPUT_DIR`` redirects it together with the
baselines); thresholds default to :class:`repro.obs.regress.Thresholds`
and every knob is a flag.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_BENCH_DIR = Path(__file__).resolve().parent

# Runnable both as `python benchmarks/trend.py` (sys.path[0] is the
# bench dir, src may be absent) and under pytest (repro importable,
# harness not): backfill whichever half is missing.
sys.path.insert(0, str(_BENCH_DIR))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, str(_BENCH_DIR.parent / "src"))

import harness

from repro.obs.regress import (
    VERDICT_REGRESS,
    Thresholds,
    evaluate_trends,
    render_trend_report,
    worst_verdict,
)
from repro.obs.store import TrendStore


def build_store(store_path, bench_dir: Path) -> TrendStore:
    """The bound store with every ``BENCH_*.json`` of ``bench_dir``
    ingested (append-only — unchanged baselines add nothing)."""
    store = TrendStore(path=store_path)
    for path in sorted(Path(bench_dir).glob("BENCH_*.json")):
        store.ingest_file(path)
    return store


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="trend-store ledger (default: trend_store.jsonl in the "
        "harness results directory)",
    )
    parser.add_argument(
        "--bench-dir",
        type=Path,
        default=_BENCH_DIR,
        help="directory holding the BENCH_*.json baselines to ingest",
    )
    parser.add_argument(
        "--report",
        type=Path,
        default=None,
        help="also write the rendered report to this file",
    )
    parser.add_argument(
        "--fail-on-regress",
        action="store_true",
        help="exit 1 when any metric series is judged 'regress'",
    )
    defaults = Thresholds()
    parser.add_argument("--warn-ratio", type=float, default=defaults.warn_ratio)
    parser.add_argument("--regress-ratio", type=float, default=defaults.regress_ratio)
    parser.add_argument("--min-history", type=int, default=defaults.min_history)
    parser.add_argument("--window", type=int, default=defaults.window)
    parser.add_argument("--noise-guard", type=float, default=defaults.noise_guard)
    args = parser.parse_args(argv)

    store_path = args.store
    if store_path is None:
        store_path = harness.results_dir() / "trend_store.jsonl"
    thresholds = Thresholds(
        warn_ratio=args.warn_ratio,
        regress_ratio=args.regress_ratio,
        min_history=args.min_history,
        window=args.window,
        noise_guard=args.noise_guard,
    )

    store = build_store(store_path, args.bench_dir)
    verdicts = evaluate_trends(store, thresholds)
    report = render_trend_report(verdicts, thresholds)
    print(report)
    print(f"store: {store_path} ({len(store)} run records)")
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report + "\n")
        print(f"report written to {args.report}")

    if args.fail_on_regress and worst_verdict(verdicts) == VERDICT_REGRESS:
        regressed = [v for v in verdicts if v.verdict == VERDICT_REGRESS]
        print(
            f"FAIL: {len(regressed)} metric series regressed", file=sys.stderr
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
