"""Vectorized vs reference polynomial evaluation: the repro.poly payoff.

The acceptance contract of the polynomial subsystem is measured here:
one shared-monomial evaluation + Jacobian pass of **katsura-8** (9
equations, 74 monomials, 54 distinct power products) at double double
precision must run at least **5x** faster through the vectorized
limb-major kernels of :class:`repro.poly.system.PolynomialSystem` than
through the scalar loop-per-monomial reference of
:mod:`repro.poly.reference` — while producing **bit-identical** values,
which is asserted before any timing (a speedup over a wrong kernel is
worthless).  Measured 15-18x on the development machine; the plain
evaluation (without the Jacobian reuse) is recorded alongside without
a floor.

The floor runs in the CI ``perf-smoke`` job (not marked heavy, so
``--quick`` keeps it); the parametrized pytest-benchmark sweeps over
(family, precision, series order) are heavy.  Every measured floor is
recorded through :mod:`harness` into ``BENCH_poly.json`` (timings,
speedups, flop tallies, problem shape, git SHA) so the throughput
trajectory is tracked across PRs.
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.poly import cyclic, katsura, noon
from repro.poly.reference import (
    reference_evaluate,
    reference_evaluate_series,
    reference_jacobian,
)
from repro.series.reference import ScalarSeries
from repro.series.truncated import TruncatedSeries

#: The acceptance-contract floor: katsura-8 evaluation + Jacobian at dd.
POLY_SPEEDUP_FLOOR = 5.0

LIMBS = 2  # double double — the headline precision of the contract

_FAMILIES = {"katsura": katsura, "cyclic": cyclic, "noon": noon}


def _point(system, seed=20220322):
    rng = np.random.default_rng(seed)
    return list(rng.standard_normal(system.variables))


def _assert_bit_identical(system, point, limbs):
    values = system.evaluate(point, limbs)
    jacobian = system.jacobian_matrix(point, limbs)
    expected_values = reference_evaluate(system, point, limbs)
    expected_jacobian = reference_jacobian(system, point, limbs)
    for i in range(system.equations):
        assert np.array_equal(
            values.data[:, i], np.array(expected_values[i].limbs)
        )
        for j in range(system.variables):
            assert np.array_equal(
                jacobian.data[:, i, j], np.array(expected_jacobian[i][j].limbs)
            )


def test_poly_eval_jacobian_speedup_floor():
    """Acceptance contract: >= 5x at dd on katsura-8's shared
    evaluation + Jacobian pass vs the scalar reference (measured
    15-18x on the development machine) — bit-identity first."""
    system = katsura(8)
    point = _point(system)
    _assert_bit_identical(system, point, LIMBS)

    reference_seconds = harness.best_seconds(
        lambda: (
            reference_evaluate(system, point, LIMBS),
            reference_jacobian(system, point, LIMBS),
        ),
        repeats=3,
    )
    vectorized_seconds = harness.best_seconds(
        lambda: system.evaluate_with_jacobian(point, LIMBS), repeats=5
    )
    speedup = reference_seconds / vectorized_seconds

    eval_reference_seconds = harness.best_seconds(
        lambda: reference_evaluate(system, point, LIMBS), repeats=3
    )
    eval_vectorized_seconds = harness.best_seconds(
        lambda: system.evaluate(point, LIMBS), repeats=5
    )

    counts = system.counts()
    harness.record(
        "poly",
        f"katsura8_eval_jac_{LIMBS}d",
        shape=harness.problem_shape(
            n=system.variables,
            degree=max(system.degrees),
            order=0,
            monomials=system.monomials,
            products=system.distinct_products,
        ),
        limbs=LIMBS,
        reference_seconds=reference_seconds,
        vectorized_seconds=vectorized_seconds,
        speedup=speedup,
        floor=POLY_SPEEDUP_FLOOR,
        eval_reference_seconds=eval_reference_seconds,
        eval_vectorized_seconds=eval_vectorized_seconds,
        eval_speedup=eval_reference_seconds / eval_vectorized_seconds,
        md_flops=counts.combined_flops(LIMBS),
        md_operations=counts.combined.md_operations,
    )
    print(
        f"\nkatsura-8 dd eval+jacobian: reference {reference_seconds * 1e3:.2f} ms, "
        f"vectorized {vectorized_seconds * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= POLY_SPEEDUP_FLOOR


@pytest.mark.heavy
@pytest.mark.parametrize("limbs", [2, 4], ids=["2d", "4d"])
@pytest.mark.parametrize(
    "family,n", [("katsura", 4), ("katsura", 8), ("cyclic", 5), ("noon", 4)]
)
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_point_evaluation_sweep(benchmark, backend, family, n, limbs):
    """Point evaluation sweep over family x size x precision."""
    system = _FAMILIES[family](n)
    point = _point(system)
    if backend == "vectorized":
        result = benchmark(lambda: system.evaluate(point, limbs))
        assert result.shape == (system.equations,)
    else:
        result = benchmark(lambda: reference_evaluate(system, point, limbs))
        assert len(result) == system.equations
    counts = system.counts()
    benchmark.extra_info["md_flops"] = counts.evaluation_flops(limbs)
    benchmark.extra_info["shape"] = harness.problem_shape(
        n=system.variables, degree=max(system.degrees)
    )


@pytest.mark.heavy
@pytest.mark.parametrize("order", [4, 8, 16])
@pytest.mark.parametrize("backend", ["reference", "vectorized"])
def test_series_evaluation_sweep(benchmark, backend, order):
    """Truncated-series evaluation of katsura-4 over the series order
    (the residual evaluations of one tracker step)."""
    system = katsura(4)
    rng = np.random.default_rng(20220322)
    coefficients = rng.standard_normal((system.variables, order + 1))
    if backend == "vectorized":
        arguments = [TruncatedSeries(list(row), LIMBS) for row in coefficients]
        result = benchmark(lambda: system.evaluate_series(arguments))
        assert result.order == order
    else:
        arguments = [ScalarSeries(list(row), LIMBS) for row in coefficients]
        result = benchmark(lambda: reference_evaluate_series(system, arguments))
        assert result[0].order == order
    counts = system.counts(order=order)
    benchmark.extra_info["md_flops"] = counts.evaluation_flops(LIMBS)
    benchmark.extra_info["shape"] = harness.problem_shape(
        n=system.variables, degree=max(system.degrees), order=order
    )
