"""Shared helpers for the benchmark suite.

Each ``bench_table*.py`` file regenerates one table (and, where one
exists, the associated figure) of the paper with the analytic cost
model and the performance model; the ``bench_real_*`` and
``bench_ablation_*`` files execute the numeric multiple double kernels
at reduced dimensions.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng():
    return np.random.default_rng(20220320)


def run_and_render(benchmark, experiment_func, **kwargs):
    """Benchmark an experiment driver and attach its rendering."""
    from repro.perf import report

    result = benchmark(lambda: experiment_func(**kwargs))
    benchmark.extra_info["rows"] = len(result.rows)
    text = report.format_experiment(result)
    # keep the rendered table in the benchmark metadata (and visible with -s)
    benchmark.extra_info["preview"] = text.splitlines()[0]
    return result
