"""Shared helpers for the benchmark suite.

Each ``bench_table*.py`` file regenerates one table (and, where one
exists, the associated figure) of the paper with the analytic cost
model and the performance model; the ``bench_real_*`` and
``bench_ablation_*`` files execute the numeric multiple double kernels
at reduced dimensions.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import numpy as np
import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="bitrot-smoke mode: skip the heavy timing benchmarks (used "
        "by CI together with --benchmark-disable)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "heavy: long-running timing benchmark, skipped under --quick"
    )


def pytest_collection_modifyitems(config, items):
    if not config.getoption("--quick"):
        return
    skip_heavy = pytest.mark.skip(reason="--quick skips heavy timing benchmarks")
    for item in items:
        if "heavy" in item.keywords:
            item.add_marker(skip_heavy)


@pytest.fixture
def rng():
    return np.random.default_rng(20220320)


def run_and_render(benchmark, experiment_func, **kwargs):
    """Benchmark an experiment driver and attach its rendering."""
    from repro.perf import report

    result = benchmark(lambda: experiment_func(**kwargs))
    benchmark.extra_info["rows"] = len(result.rows)
    text = report.format_experiment(result)
    # keep the rendered table in the benchmark metadata (and visible with -s)
    benchmark.extra_info["preview"] = text.splitlines()[0]
    return result
