"""Table 11: least squares solving in four precisions on three GPUs."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table11_least_squares(benchmark):
    result = run_and_render(benchmark, experiments.table11_least_squares)
    rows = {(r["device"], r["limbs"]): r for r in result.rows}
    for device in ("RTX2080", "P100", "V100"):
        for limbs in (1, 2, 4, 8):
            row = rows[(device, limbs)]
            # the QR time dominates the back substitution by well over 10x
            assert row["qr_over_bs_kernel_time"] > 10
    # the overall solver keeps teraflop performance on the P100/V100 despite
    # the lower back substitution rates (paper Section 4.9)
    for device in ("P100", "V100"):
        for limbs in (2, 4, 8):
            assert rows[(device, limbs)]["total_kernel_gflops"] > 1000
    # doubling the precision keeps the overhead below the predicted factors
    for device in ("RTX2080", "P100", "V100"):
        t2 = rows[(device, 2)]["qr_kernel_ms"] + rows[(device, 2)]["bs_kernel_ms"]
        t4 = rows[(device, 4)]["qr_kernel_ms"] + rows[(device, 4)]["bs_kernel_ms"]
        t8 = rows[(device, 8)]["qr_kernel_ms"] + rows[(device, 8)]["bs_kernel_ms"]
        assert t4 / t2 < 11.7
        assert t8 / t4 < 5.4
