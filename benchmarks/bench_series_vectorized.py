"""Scalar-vs-vectorized series sweep: the payoff of the SoA refactor.

The series subsystem stores coefficients in the limb-major
structure-of-arrays layout of :class:`repro.vec.mdarray.MDArray`; the
scalar loop-per-coefficient implementation survives as
:class:`repro.series.reference.ScalarSeries`, bit-identical by
construction.  This file measures what the layout buys:

* ``test_cauchy_product`` sweeps the hot kernel — series
  multiplication — over truncation order × precision for both
  backends;
* ``test_newton_staircase`` runs the order-by-order series Newton
  staircase end to end on both backends (the vectorized path gathers
  right-hand-side columns from the residual coefficient arrays, the
  reference path juggles scalar coefficients);
* ``test_cauchy_product_speedup`` asserts the acceptance contract:
  the vectorized Cauchy product is at least an order of magnitude
  faster than the scalar reference at order >= 32.

Run with ``pytest benchmarks/bench_series_vectorized.py --benchmark-only``
(or ``--benchmark-disable --quick`` for the CI bitrot smoke run).
"""

from __future__ import annotations

import numpy as np
import pytest

import harness
from repro.md.opcounts import series_flops, series_launches
from repro.series import ScalarSeries, TruncatedSeries, newton_series

#: Truncation orders of the sweep; the acceptance contract is pinned at
#: order >= 32.
ORDERS = (8, 16, 32, 64)

_BACKENDS = {"scalar": ScalarSeries, "vectorized": TruncatedSeries}


def _random_pair(series_cls, order, limbs, seed=20220320):
    rng = np.random.default_rng(seed)
    values = list(rng.standard_normal(order + 1))
    values[0] = abs(values[0]) + 1.0
    other = list(rng.standard_normal(order + 1))
    return series_cls(values, limbs), series_cls(other, limbs)


def sqrt_system(x, t):
    x1, x2 = x
    return [x1 * x1 - 1 - t, x1 * x2 - 1]


def sqrt_jacobian(x0):
    return [[2 * x0[0], 0], [x0[1], x0[0]]]


@pytest.mark.parametrize("limbs", [2, 4], ids=["2d", "4d"])
@pytest.mark.parametrize("order", ORDERS)
@pytest.mark.parametrize("backend", sorted(_BACKENDS))
def test_cauchy_product(benchmark, backend, order, limbs):
    """One series multiplication: O(K^2) scalar ops vs O(log K) launches."""
    a, b = _random_pair(_BACKENDS[backend], order, limbs)
    product = benchmark(lambda: a * b)
    assert product.order == order
    benchmark.extra_info["md_flops"] = series_flops("mul", order, limbs)
    benchmark.extra_info["launches"] = series_launches("mul", order)


@pytest.mark.parametrize("limbs", [2], ids=["2d"])
@pytest.mark.parametrize("order", [8, 32])
@pytest.mark.parametrize("backend", sorted(_BACKENDS))
def test_newton_staircase(benchmark, backend, order, limbs):
    """The full order-by-order staircase on the examples' system."""
    result = benchmark(
        lambda: newton_series(
            sqrt_system,
            sqrt_jacobian,
            [1, 1],
            order,
            limbs,
            tile_size=1,
            backend="reference" if backend == "scalar" else backend,
        )
    )
    assert result.order == order


def test_cauchy_product_speedup_quick():
    """The floor of the heavy sweep at its smallest asserted point
    (order 32, dd), kept un-heavy so the CI ``perf-smoke`` job enforces
    it on every push and refreshes ``BENCH_series.json``."""
    order, limbs = 32, 2
    scalar_a, scalar_b = _random_pair(ScalarSeries, order, limbs)
    vector_a, vector_b = _random_pair(TruncatedSeries, order, limbs)
    expected = [c.limbs for c in scalar_a * scalar_b]
    observed = [c.limbs for c in vector_a * vector_b]
    assert observed == expected
    scalar_seconds = harness.best_seconds(lambda: scalar_a * scalar_b, repeats=3)
    vector_seconds = harness.best_seconds(lambda: vector_a * vector_b, repeats=5)
    speedup = scalar_seconds / vector_seconds
    harness.record(
        "series",
        f"cauchy_order{order}_{limbs}d",
        shape=harness.problem_shape(n=1, order=order),
        order=order,
        limbs=limbs,
        scalar_seconds=scalar_seconds,
        vectorized_seconds=vector_seconds,
        speedup=speedup,
        floor=10.0,
        md_flops=series_flops("mul", order, limbs),
        launches=series_launches("mul", order),
    )
    assert speedup >= 10.0


@pytest.mark.heavy
@pytest.mark.parametrize("order", [32, 64])
def test_cauchy_product_speedup(order):
    """Acceptance contract: >= 10x on series multiplication at dd for
    order >= 32 (measured 16-40x on the development machine)."""
    limbs = 2
    scalar_a, scalar_b = _random_pair(ScalarSeries, order, limbs)
    vector_a, vector_b = _random_pair(TruncatedSeries, order, limbs)
    # identical bits first — a speedup over a wrong kernel is worthless
    expected = [c.limbs for c in scalar_a * scalar_b]
    observed = [c.limbs for c in vector_a * vector_b]
    assert observed == expected
    scalar_seconds = harness.best_seconds(lambda: scalar_a * scalar_b, repeats=3)
    vector_seconds = harness.best_seconds(lambda: vector_a * vector_b, repeats=5)
    speedup = scalar_seconds / vector_seconds
    harness.record(
        "series",
        f"cauchy_order{order}_{limbs}d",
        shape=harness.problem_shape(n=1, order=order),
        order=order,
        limbs=limbs,
        scalar_seconds=scalar_seconds,
        vectorized_seconds=vector_seconds,
        speedup=speedup,
        floor=10.0,
        md_flops=series_flops("mul", order, limbs),
        launches=series_launches("mul", order),
    )
    print(
        f"\norder {order} dd Cauchy product: scalar {scalar_seconds * 1e3:.2f} ms, "
        f"vectorized {vector_seconds * 1e3:.2f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0


@pytest.mark.heavy
def test_newton_staircase_speedup():
    """The staircase is solver-bound at dimension 2, but the vectorized
    residual arithmetic must still win clearly at order 32."""
    run_vectorized = lambda: newton_series(
        sqrt_system, sqrt_jacobian, [1, 1], 32, 2, tile_size=1
    )
    run_reference = lambda: newton_series(
        sqrt_system, sqrt_jacobian, [1, 1], 32, 2, tile_size=1, backend="reference"
    )
    reference_seconds = harness.best_seconds(run_reference, repeats=2)
    vectorized_seconds = harness.best_seconds(run_vectorized, repeats=2)
    speedup = reference_seconds / vectorized_seconds
    print(
        f"\norder 32 dd staircase: reference {reference_seconds * 1e3:.1f} ms, "
        f"vectorized {vectorized_seconds * 1e3:.1f} ms, speedup {speedup:.1f}x"
    )
    assert speedup >= 1.5
