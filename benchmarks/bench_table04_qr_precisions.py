"""Table 4 and Figure 1: QR in four precisions on three GPUs."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table4_qr_four_precisions(benchmark):
    result = run_and_render(benchmark, experiments.table4_qr_four_precisions)
    by_key = {(r["device"], r["limbs"]): r for r in result.rows}
    for device in ("RTX2080", "P100", "V100"):
        # times increase with precision ...
        assert (
            by_key[(device, 2)]["kernel_ms"]
            < by_key[(device, 4)]["kernel_ms"]
            < by_key[(device, 8)]["kernel_ms"]
        )
        # ... but the flop rate also increases with the precision
        assert (
            by_key[(device, 2)]["kernel_gflops"]
            < by_key[(device, 4)]["kernel_gflops"]
            < by_key[(device, 8)]["kernel_gflops"]
        )
        # overhead factors below the operation-count predictions
        assert by_key[(device, 4)]["kernel_ms"] / by_key[(device, 2)]["kernel_ms"] < 11.7
        assert by_key[(device, 8)]["kernel_ms"] / by_key[(device, 4)]["kernel_ms"] < 5.4


def test_figure1_precision_scaling(benchmark):
    result = run_and_render(benchmark, experiments.figure1_qr_precision_scaling)
    v100 = [r["log2_kernel_ms"] for r in result.rows if r["device"] == "V100"]
    # monotone growth of the bars, spaced by roughly log2(7) and log2(4)
    assert v100 == sorted(v100)
    assert 2.0 < v100[1] - v100[0] < 3.6
    assert 1.5 < v100[2] - v100[1] < 2.6


def test_overhead_factor_summary(benchmark):
    result = run_and_render(benchmark, experiments.overhead_factors)
    assert all(row["below_prediction"] for row in result.rows)
