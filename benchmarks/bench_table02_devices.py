"""Table 2: characteristics of the five (simulated) GPUs."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table2_device_catalog(benchmark):
    result = run_and_render(benchmark, experiments.table2_devices)
    assert len(result.rows) == 5
    v100 = next(r for r in result.rows if "V100" in r["device"])
    assert v100["multiprocessors"] == 80
    assert v100["peak_double_gflops"] == 7900.0
