"""Ablation: what the extra precision buys (residual levels per format).

The motivation of the paper is that multiple double precision delivers
residuals at the level of the working precision; this ablation measures
the residuals of the complete least squares solver in all four
precisions on the same problem.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import lstsq
from repro.core.baseline import numpy_lstsq_double
from repro.vec import MDArray, linalg
from repro.vec import random as mdrandom

DIM = 24


def _problem(limbs):
    rng = np.random.default_rng(17)
    a = mdrandom.random_matrix(DIM, DIM, limbs, rng)
    x_true = mdrandom.random_vector(DIM, limbs, rng)
    b = linalg.matvec(a, x_true)
    return a, b


@pytest.mark.parametrize("limbs,expected_level", [(2, 1e-27), (4, 1e-58), (8, 1e-118)])
def test_residual_reaches_working_precision(benchmark, limbs, expected_level):
    a, b = _problem(limbs)
    result = benchmark.pedantic(lambda: lstsq(a, b, tile_size=6), rounds=1, iterations=1)
    residual = result.residual_norm(a, b)
    benchmark.extra_info["residual"] = residual
    assert residual < DIM * expected_level


def test_double_precision_baseline_is_far_less_accurate(benchmark):
    a, b = _problem(4)
    x_double = benchmark.pedantic(lambda: numpy_lstsq_double(a, b), rounds=1, iterations=1)
    res_double = linalg.residual_norm(a, MDArray.from_double(x_double, 4), b)
    res_md = lstsq(a, b, tile_size=6).residual_norm(a, b)
    # the quad double solver is at least 40 orders of magnitude more accurate
    assert res_md < 1e-40 * res_double
