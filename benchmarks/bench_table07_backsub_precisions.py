"""Table 7 and Figure 3: back substitution in four precisions."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table7_backsub_four_precisions(benchmark):
    result = run_and_render(benchmark, experiments.table7_backsub_precisions)
    rows = {(r["limbs"], r["dimension"]): r for r in result.rows}
    # kernel times grow with both the precision and the dimension
    assert rows[(2, 5120)]["kernel_ms"] < rows[(4, 5120)]["kernel_ms"] < rows[(8, 5120)]["kernel_ms"]
    assert rows[(4, 5120)]["kernel_ms"] < rows[(4, 10240)]["kernel_ms"] < rows[(4, 20480)]["kernel_ms"]
    # performance improves with the precision (high CGMA ratios)
    assert rows[(2, 20480)]["kernel_gflops"] < rows[(4, 20480)]["kernel_gflops"]
    # the wall clock times are dominated by transfers and host staging
    for row in result.rows:
        assert row["wall_ms"] > row["kernel_ms"]
    # octo double at 20,480 oversubscribes the 32 GB host
    assert rows[(8, 20480)]["wall_ms"] > 20 * rows[(8, 20480)]["kernel_ms"]


def test_figure3_backsub_scaling(benchmark):
    result = run_and_render(benchmark, experiments.figure3_backsub_scaling)
    # within each precision the bars grow with the dimension
    for limbs in (1, 2, 4, 8):
        bars = [r["log2_kernel_ms"] for r in result.rows if r["limbs"] == limbs]
        assert bars == sorted(bars)
