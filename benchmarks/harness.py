"""Machine-readable benchmark results: the perf trajectory across PRs.

The acceptance-contract benchmarks (``bench_batched_qr.py``,
``bench_series_vectorized.py``) record their measurements here and
:func:`record` merges them into ``BENCH_<suite>.json`` next to this
file — timings, speedup ratios, flop tallies and the git SHA they were
measured at.  The first baselines are committed with the suite; the CI
``perf-smoke`` job regenerates the files on every push and uploads them
as artifacts, so regressions show up both as failing floor assertions
(the benchmarks ``assert speedup >= FLOOR``) and as a visible drop in
the artifact history.

Schema of one ``BENCH_<suite>.json``::

    {
      "suite": "batch",
      "git_sha": "<sha of the last update>",
      "python": "3.11.7",
      "updated": "2026-07-26T12:34:56Z",
      "entries": {
        "<entry id>": {"seconds": ..., "speedup": ..., "floor": ...,
                       "md_flops": ..., "launches": ...,
                       "shape": {"n": ..., "degree": ..., "batch": ..., "order": ...},
                       "git_sha": "<sha this entry was measured at>",
                       "recorded_at": "<ISO-8601 stamp of this entry>",
                       ...}
      }
    }

Every entry carries a ``shape`` sub-dict (:func:`problem_shape`) with
the problem dimensions — n, degree, batch width b, series order K —
so the records stay self-describing as benchmarks evolve across PRs.
Each entry is also stamped with its *own* ``git_sha``/``recorded_at``:
the suite-level stamps only say when the file was last touched, so in
a file mixing entries measured at different commits they misattribute
every entry but the newest.  The trend store
(:mod:`repro.obs.store`) orders run history by the per-entry stamps
and falls back to the suite-level pair on baselines recorded before
they existed — consumers must stay null-tolerant the same way.

Entries are keyed by a stable id and overwritten in place, so the file
always holds the latest measurement of every benchmark that ran.
Set ``BENCH_OUTPUT_DIR`` to redirect the output (e.g. to keep a local
run from touching the committed baselines).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import time
from pathlib import Path

__all__ = [
    "results_dir",
    "results_path",
    "git_sha",
    "environment",
    "record",
    "best_seconds",
    "load",
    "problem_shape",
]

_BENCH_DIR = Path(__file__).resolve().parent


def results_dir() -> Path:
    """Where the ``BENCH_*.json`` files live (``BENCH_OUTPUT_DIR`` or
    the benchmarks directory itself, which holds the committed
    baselines)."""
    override = os.environ.get("BENCH_OUTPUT_DIR")
    if override:
        path = Path(override)
        path.mkdir(parents=True, exist_ok=True)
        return path
    return _BENCH_DIR


def results_path(suite: str) -> Path:
    return results_dir() / f"BENCH_{suite}.json"


def git_sha() -> str:
    """The current commit, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_BENCH_DIR,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def environment() -> dict:
    """The measurement environment: python, platform, CPU budget.

    Stamped into every suite file by :func:`record` so the artifact
    history says not only *what* was measured but *where* — a speedup
    drop on a 2-core CI runner is not a regression against an 8-core
    baseline.  ``exec_backend`` names the active
    :mod:`repro.exec` execution backend (``REPRO_EXEC_BACKEND``);
    baselines recorded before the key existed — or whole
    ``environment`` blocks recorded as ``None`` — stay readable, so
    consumers must treat a missing key as "generic, pre-backend".
    """
    try:
        from repro.exec import get_backend

        exec_backend = get_backend().name
    except Exception:  # repro not importable from this interpreter
        exec_backend = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "exec_backend": exec_backend,
    }


def load(suite: str) -> dict:
    """The current contents of a suite file (empty skeleton if absent).

    Baselines committed before the environment stamp existed load with
    ``environment`` backfilled to ``None`` — consumers can rely on the
    key being present without re-recording history.
    """
    path = results_path(suite)
    data = None
    if path.exists():
        try:
            data = json.loads(path.read_text())
        except json.JSONDecodeError:
            pass
    if data is None:
        data = {"suite": suite, "entries": {}}
    data.setdefault("environment", None)
    return data


def record(suite: str, entry: str, telemetry=None, **fields) -> dict:
    """Merge one benchmark entry into ``BENCH_<suite>.json``.

    ``fields`` should be JSON-serializable measurement data (seconds,
    speedup, floor, flop tallies, launch counts, problem shape...).
    ``telemetry`` optionally attaches a ``repro.obs`` recording summary
    (:func:`repro.obs.export.metrics_summary` output, or a live
    recorder / read-back document, which is summarized here) under the
    entry's ``telemetry`` key.  The entry is stamped with its own
    ``git_sha``/``recorded_at`` (see the module docstring — the
    suite-level stamps cover only the newest entry).  Returns the entry
    as written.
    """
    data = load(suite)
    data["suite"] = suite
    data["git_sha"] = git_sha()
    data["python"] = platform.python_version()
    data["environment"] = environment()
    data["updated"] = time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    entries = data.setdefault("entries", {})
    if telemetry is not None:
        if hasattr(telemetry, "records"):
            from repro.obs.export import metrics_summary

            telemetry = metrics_summary(telemetry)
        fields = {**fields, "telemetry": telemetry}
    entries[entry] = {
        **fields,
        "git_sha": data["git_sha"],
        "recorded_at": data["updated"],
    }
    path = results_path(suite)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return entries[entry]


def problem_shape(*, n=None, degree=None, batch=None, order=None, **extra) -> dict:
    """Canonical problem-shape metadata for a benchmark entry.

    Benchmarks attach this as the ``shape`` field of their
    :func:`record` call so every ``BENCH_*.json`` entry is
    self-describing across PRs: ``n`` is the problem dimension (matrix
    rows/columns, system unknowns), ``degree`` the polynomial degree,
    ``batch`` the fleet/batch width ``b``, ``order`` the series
    truncation order ``K``.  Extra keyword fields (``rows``,
    ``monomials``, ...) pass through; ``None`` values are dropped.
    """
    shape = {"n": n, "degree": degree, "batch": batch, "order": order, **extra}
    return {key: value for key, value in shape.items() if value is not None}


def best_seconds(func, repeats: int) -> float:
    """Best-of-``repeats`` wall time of ``func()`` — the measurement the
    floor assertions use (minimum is the standard noise-resistant
    estimator for CI machines)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best
