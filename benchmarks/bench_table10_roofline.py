"""Table 10 and Figure 5: arithmetic intensity and the roofline model."""

from __future__ import annotations

from conftest import run_and_render

from repro.gpu import get_device
from repro.perf import experiments


def test_table10_arithmetic_intensity(benchmark):
    result = run_and_render(benchmark, experiments.table10_roofline)
    intensities = [r["intensity"] for r in result.rows]
    rates = [r["kernel_gflops"] for r in result.rows]
    # intensity and achieved performance grow with the tile size
    assert intensities == sorted(intensities)
    assert rates == sorted(rates)
    # every configuration sits right of the V100 ridge point (compute bound)
    ridge = get_device("V100").ridge_point
    assert all(i > ridge for i in intensities)
    # achieved performance stays below the roofline
    assert all(r["kernel_gflops"] <= r["attainable_gflops"] for r in result.rows)


def test_figure5_roofline_dots_move_up_and_right(benchmark):
    result = run_and_render(benchmark, experiments.figure5_roofline)
    xs = [r["log10_intensity"] for r in result.rows]
    ys = [r["log10_gflops"] for r in result.rows]
    assert xs == sorted(xs)
    assert ys == sorted(ys)
    # the leftmost dot (n = 32, half-occupied multiprocessors) is the outlier
    # with the largest jump to its neighbour
    jumps = [ys[i + 1] - ys[i] for i in range(len(ys) - 1)]
    assert jumps[0] == max(jumps)
