"""Table 9 and Figure 4: quad double tiled back substitution, three GPUs."""

from __future__ import annotations

from conftest import run_and_render

from repro.perf import experiments


def test_table9_backsub_three_gpus(benchmark):
    result = run_and_render(benchmark, experiments.table9_backsub_three_gpus)
    v100 = {r["tile"]: r for r in result.rows if r["device"] == "V100"}
    p100 = {r["tile"]: r for r in result.rows if r["device"] == "P100"}
    rtx = {r["tile"]: r for r in result.rows if r["device"] == "RTX2080"}
    # performance grows with the tile size on every device
    for rows in (v100, p100, rtx):
        rates = [rows[n]["kernel_gflops"] for n in sorted(rows)]
        assert rates == sorted(rates)
    # teraflop performance on the V100 only at dimensions in the 10^4 range
    assert v100[32]["kernel_gflops"] < 500
    assert v100[256]["kernel_gflops"] > 1000
    # the V100 beats the P100 by more than the 1.68 peak ratio (80 tiles
    # match its 80 multiprocessors), and the RTX 2080 is far slower
    assert p100[224]["kernel_ms"] / v100[224]["kernel_ms"] > 1.68
    assert rtx[224]["kernel_ms"] > 5 * p100[224]["kernel_ms"]
    # for large tiles, inverting the diagonal tiles dominates the other two
    # stages on the V100 (the paper observes this from n = 96 on; the model
    # reproduces it from n = 192 on)
    for n in (192, 224, 256):
        assert v100[n]["invert_ms"] >= v100[n]["multiply_ms"]
        assert v100[n]["invert_ms"] >= v100[n]["update_ms"]


def test_figure4_backsub_three_gpus(benchmark):
    result = run_and_render(benchmark, experiments.figure4_backsub_three_gpus)
    for device in ("RTX2080", "P100", "V100"):
        bars = [r["log2_kernel_ms"] for r in result.rows if r["device"] == device]
        assert bars == sorted(bars)
