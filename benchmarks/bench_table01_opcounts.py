"""Table 1: operation counts of multiple double arithmetic."""

from __future__ import annotations

from conftest import run_and_render

from repro.md.opcounts import PAPER_TABLE1
from repro.perf import experiments


def test_table1_operation_counts(benchmark):
    result = run_and_render(benchmark, experiments.table1_operation_counts)
    rows = {row["limbs"]: row for row in result.rows}
    # the paper's counts are reported verbatim
    assert rows[4]["paper_div"] == PAPER_TABLE1[4].div == 893
    # our measured counts grow with the same quadratic trend
    assert rows[4]["measured_mul"] > 4 * rows[2]["measured_mul"]
    assert rows[8]["measured_mul"] > 4 * rows[4]["measured_mul"]
