"""Native complex vs realified homotopy tracking: the backend payoff.

The acceptance contract of the native complex series backend, measured
end to end on the cyclic-3 total-degree fleet at double double:

1. **agreement first** — both backends must find all 6 roots with
   ~1e-16 target residuals, and the per-path endpoints must agree to
   working precision (a speedup over a diverged tracker is worthless);
2. **tracking speedup** — the native backend must track the same fleet
   at least **1.5x** faster than the realified cross-check (measured
   ~2.1x on the development machine).  The win is structural: the
   native ``n``-dimensional complex expansion pays ~4x real arithmetic
   per operation where the realified ``2n``-dimensional detour pays
   ~8x QR flops *and* needs roughly twice the accepted steps (its
   doubled-dimension Padé approximants produce tighter pole caps), so
   the per-step cost stays near parity while each native step advances
   the path twice as far;
3. the per-step costs of both backends are recorded alongside (the
   native step must stay within 1.5x of a realified step — the
   flop-model parity of ``path_step_trace(complex_data=True)``).

The floor runs in the CI ``perf-smoke`` job (not marked heavy);
results are recorded through :mod:`harness` into
``BENCH_complex.json``.  The heavy sweep extends the comparison to
katsura-2 and the d/dd rungs.
"""

from __future__ import annotations

import pytest

import harness
from repro.poly import Homotopy, cyclic, katsura
from repro.poly.homotopy import extract_complex

#: The acceptance-contract floor: whole-fleet tracking at dd.
TRACK_SPEEDUP_FLOOR = 1.5

#: Sanity cap on the per-step cost of the native backend relative to a
#: realified step (the analytic model predicts near parity at n=3).
STEP_COST_CAP = 1.5

LIMBS = 2  # double double — the headline precision of the contract

TRACK = dict(tol=1e-6, order=8, max_steps=192, precision_ladder=(LIMBS,))


def _endpoints(homotopy, fleet):
    out = []
    for path in fleet.paths:
        if homotopy.backend == "complex":
            out.append([complex(value) for value in path.final_point])
        else:
            out.append(
                [value.as_complex() for value in extract_complex(path.final_point)]
            )
    return out


def _track_fleet(system_factory, backend, seed, **overrides):
    homotopy = Homotopy.total_degree(system_factory, seed=seed, backend=backend)
    options = dict(TRACK)
    options.update(overrides)
    seconds = [0.0]

    def run():
        import time

        start = time.perf_counter()
        fleet = homotopy.track_fleet(**options)
        seconds[0] = time.perf_counter() - start
        return fleet

    fleet = run()
    steps = sum(path.step_count for path in fleet.paths)
    return homotopy, fleet, seconds[0], steps


def test_complex_track_speedup_floor():
    """Acceptance contract: all 6 cyclic-3 roots on both backends with
    agreeing endpoints and ~1e-16 residuals, then >= 1.5x measured
    fleet-tracking speedup for the native backend at dd (measured
    ~2.1x on the development machine) — agreement first."""
    native_h, native_fleet, native_seconds, native_steps = _track_fleet(
        cyclic(3), "complex", seed=7
    )
    real_h, real_fleet, real_seconds, real_steps = _track_fleet(
        cyclic(3), "realified", seed=7
    )

    # -- agreement gate ------------------------------------------------
    assert native_fleet.reached_count == 6 and native_fleet.failed_count == 0
    assert real_fleet.reached_count == 6 and real_fleet.failed_count == 0
    worst_residual = max(
        native_h.target_residual(path.final_point) for path in native_fleet.paths
    )
    assert worst_residual < 1e-12  # ~1e-16 in practice at dd
    worst_agreement = 0.0
    for z_native, z_real in zip(
        _endpoints(native_h, native_fleet), _endpoints(real_h, real_fleet)
    ):
        worst_agreement = max(
            worst_agreement,
            max(abs(a - b) for a, b in zip(z_native, z_real)),
        )
    assert worst_agreement < 1e-8

    # -- measured speedup ---------------------------------------------
    speedup = real_seconds / native_seconds
    native_per_step = native_seconds / native_steps
    real_per_step = real_seconds / real_steps
    step_cost_ratio = native_per_step / real_per_step

    harness.record(
        "complex",
        f"cyclic3_fleet_{LIMBS}d",
        shape=harness.problem_shape(
            n=3, degree=3, batch=6, order=TRACK["order"]
        ),
        limbs=LIMBS,
        native_seconds=native_seconds,
        realified_seconds=real_seconds,
        native_steps=native_steps,
        realified_steps=real_steps,
        native_seconds_per_step=native_per_step,
        realified_seconds_per_step=real_per_step,
        step_cost_ratio=step_cost_ratio,
        speedup=speedup,
        floor=TRACK_SPEEDUP_FLOOR,
        worst_residual=worst_residual,
        worst_endpoint_agreement=worst_agreement,
    )
    print(
        f"\ncyclic-3 dd fleet: native {native_seconds:.2f} s / {native_steps} steps, "
        f"realified {real_seconds:.2f} s / {real_steps} steps, "
        f"speedup {speedup:.2f}x (per-step cost ratio {step_cost_ratio:.2f})"
    )
    assert speedup >= TRACK_SPEEDUP_FLOOR
    assert step_cost_ratio <= STEP_COST_CAP


@pytest.mark.heavy
@pytest.mark.parametrize("limbs", [1, 2], ids=["1d", "2d"])
def test_katsura2_backends_agree_and_native_wins(limbs):
    """The sweep leg: katsura-2 across the d/dd rungs — endpoints agree
    and the native backend does not lose (recorded, no hard floor: at
    n=3 the structural step advantage is smaller than on cyclic-3)."""
    native_h, native_fleet, native_seconds, native_steps = _track_fleet(
        katsura(2), "complex", seed=11, precision_ladder=(limbs,), max_steps=96
    )
    real_h, real_fleet, real_seconds, real_steps = _track_fleet(
        katsura(2), "realified", seed=11, precision_ladder=(limbs,), max_steps=96
    )
    assert native_fleet.reached_count == real_fleet.reached_count == 4
    for z_native, z_real in zip(
        _endpoints(native_h, native_fleet), _endpoints(real_h, real_fleet)
    ):
        assert max(abs(a - b) for a, b in zip(z_native, z_real)) < 1e-6
    harness.record(
        "complex",
        f"katsura2_fleet_{limbs}d",
        shape=harness.problem_shape(n=3, degree=2, batch=4, order=TRACK["order"]),
        limbs=limbs,
        native_seconds=native_seconds,
        realified_seconds=real_seconds,
        native_steps=native_steps,
        realified_steps=real_steps,
        speedup=real_seconds / native_seconds,
    )
    assert real_seconds / native_seconds > 1.0
